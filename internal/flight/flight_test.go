package flight

import (
	"strings"
	"testing"

	"repro/internal/qtrace"
	"repro/internal/sim"
)

func ms(n int) sim.Time { return sim.Time(n) * sim.Millisecond }

// feed plays n completions through a log observed by the recorder, one
// arrival per millisecond, using lat(i) as each query's service time.
func feed(r *Recorder, n int, lat func(i int) sim.Time) *qtrace.Log {
	l := qtrace.NewLog(qtrace.Options{Observer: r})
	r.AttachLog(l)
	for i := 0; i < n; i++ {
		at := ms(i)
		l.Submitted(i, i, at)
		l.Completed(i, at+lat(i))
	}
	return l
}

// TestConfigDefaults: zero fields resolve to the documented defaults and
// the windows derive from the configured retention horizon.
func TestConfigDefaults(t *testing.T) {
	c := New(Config{}).Config()
	if c.Window != DefaultWindow || c.Objective != DefaultObjective {
		t.Fatalf("window/objective = %v/%v, want defaults", c.Window, c.Objective)
	}
	if c.ShortWindow != c.Window/8 || c.LongWindow != c.Window/2 || c.BarrierEvery != c.Window/64 {
		t.Fatalf("derived windows %v/%v/%v inconsistent with %v", c.ShortWindow, c.LongWindow, c.BarrierEvery, c.Window)
	}
	if c.BurnThreshold != 0.5 || c.MinCompletions != 8 || c.QueueRatio != 4 ||
		c.QueueFloor != 8 || c.CacheDrop != 0.25 || c.CacheMinLookups != 32 {
		t.Fatalf("detector defaults off: %+v", c)
	}
	c2 := New(Config{Window: 100 * sim.Millisecond}).Config()
	if c2.ShortWindow != ms(100)/8 || c2.LongWindow != ms(50) {
		t.Fatalf("custom window did not propagate: %+v", c2)
	}
}

// TestBurnDetectorFreezesOnce: a sustained latency regression past the
// objective fires slo-burn exactly once; the freeze stops retention,
// counting, and any further detection.
func TestBurnDetectorFreezesOnce(t *testing.T) {
	r := New(Config{Window: 100 * sim.Millisecond, Detect: true, Objective: ms(5)})
	feed(r, 80, func(i int) sim.Time {
		if i < 40 {
			return ms(1) // healthy baseline
		}
		return ms(20) // sustained breach
	})
	st := r.Status()
	if !st.Frozen || st.TriggerDetector != DetectorSLOBurn {
		t.Fatalf("status = %+v, want frozen by %s", st, DetectorSLOBurn)
	}
	if n := st.Detections[DetectorSLOBurn]; n != 1 {
		t.Fatalf("detections = %v, want exactly one", st.Detections)
	}
	// LongWindow = 50 ms: the breach fraction over it crosses 50% once
	// ~25 breached completions accumulated, i.e. well before the feed ends —
	// the frozen counters must show fewer completions than were offered.
	if st.Completions >= 80 {
		t.Fatalf("freeze did not stop the counters: %d completions", st.Completions)
	}
	v := r.Verdict()
	if v.Detector != DetectorSLOBurn || v.TriggerMS == 0 {
		t.Fatalf("verdict = %+v", v)
	}
	if len(v.Series) == 0 || v.Observed == nil || !v.Observed.Breached {
		t.Fatalf("verdict carries no triggering series: %+v", v)
	}
	if v.Observed.BurnShort < 0.5 || v.Observed.BurnLong < 0.5 {
		t.Fatalf("observed burn %v/%v below threshold at trigger", v.Observed.BurnShort, v.Observed.BurnLong)
	}
	if !strings.Contains(v.Reason, "breach rate") {
		t.Fatalf("reason = %q", v.Reason)
	}
	// The series is the ring at the freeze: its last point is the trigger.
	if got := v.Series[len(v.Series)-1]; got != *v.Observed {
		t.Fatalf("series tail %+v != observed %+v", got, *v.Observed)
	}
	// Window ends at the triggering completion.
	_, to := r.Window()
	if to.Milliseconds() != v.TriggerMS {
		t.Fatalf("window ends at %v, trigger at %v ms", to, v.TriggerMS)
	}
}

// TestBurnNeedsBothWindows: a short blip that breaches the short window
// but not the long one must not trigger.
func TestBurnNeedsBothWindows(t *testing.T) {
	r := New(Config{Window: 100 * sim.Millisecond, Detect: true, Objective: ms(5)})
	feed(r, 80, func(i int) sim.Time {
		if i >= 40 && i < 50 {
			return ms(20) // 10 ms blip ≈ short window, well under half the long window
		}
		return ms(1)
	})
	if st := r.Status(); st.Frozen {
		t.Fatalf("blip froze the recorder: %+v", st)
	}
}

// TestQueueDivergenceDetector: a hot shard (max far above median
// outstanding) triggers queue-divergence; a uniformly loaded cluster at
// the same depth does not.
func TestQueueDivergenceDetector(t *testing.T) {
	hot := []int{40, 2, 3, 2}
	r := New(Config{Window: 100 * sim.Millisecond, Detect: true, Objective: ms(5)})
	r.SetLoadProvider(func(dst []int) []int { return append(dst, hot...) })
	feed(r, 4, func(int) sim.Time { return ms(1) })
	st := r.Status()
	if !st.Frozen || st.TriggerDetector != DetectorQueueSkew {
		t.Fatalf("status = %+v, want %s", st, DetectorQueueSkew)
	}
	v := r.Verdict()
	if v.Observed.QueueMax != 40 || v.Observed.QueueMedian != 2.5 || v.Observed.QueueRatio != 16 {
		t.Fatalf("observed queue shape %+v", v.Observed)
	}
	if len(v.RouterLoads) != 4 || v.RouterLoads[0] != 40 {
		t.Fatalf("verdict loads = %v", v.RouterLoads)
	}

	flat := New(Config{Window: 100 * sim.Millisecond, Detect: true, Objective: ms(5)})
	flat.SetLoadProvider(func(dst []int) []int { return append(dst, 40, 38, 41, 39) })
	feed(flat, 4, func(int) sim.Time { return ms(1) })
	if flat.Status().Frozen {
		t.Fatal("uniform deep queues are not divergence")
	}

	shallow := New(Config{Window: 100 * sim.Millisecond, Detect: true, Objective: ms(5)})
	shallow.SetLoadProvider(func(dst []int) []int { return append(dst, 4, 0, 0, 0) })
	feed(shallow, 4, func(int) sim.Time { return ms(1) })
	if shallow.Status().Frozen {
		t.Fatal("skew below the queue floor must not trigger")
	}
}

// TestCacheCollapseDetector: the short-window hit rate falling far below
// the long-window rate triggers cache-collapse once enough short-window
// lookups accumulated; without a provider the detector is inert.
func TestCacheCollapseDetector(t *testing.T) {
	r := New(Config{Window: 100 * sim.Millisecond, Detect: true, Objective: ms(50)})
	var lookups, hits uint64
	r.SetCacheProvider(func() (uint64, uint64) { return lookups, hits })
	l := qtrace.NewLog(qtrace.Options{Observer: r})
	r.AttachLog(l)
	for i := 0; i < 80; i++ {
		lookups += 10
		if i < 50 {
			hits += 9 // 90% regime
		} // then total miss
		at := ms(i)
		l.Submitted(i, i, at)
		l.Completed(i, at+ms(1))
	}
	st := r.Status()
	if !st.Frozen || st.TriggerDetector != DetectorCacheDrop {
		t.Fatalf("status = %+v, want %s", st, DetectorCacheDrop)
	}
	v := r.Verdict()
	if v.Observed.HitShort >= v.Observed.HitLong || v.Observed.HitLong < 0.25 {
		t.Fatalf("observed hit rates %v/%v not a collapse", v.Observed.HitShort, v.Observed.HitLong)
	}
	if v.CacheLookups == 0 || v.CacheLookups <= v.CacheHits {
		t.Fatalf("verdict cache counters %d/%d", v.CacheLookups, v.CacheHits)
	}

	// Same completion stream, no provider: hit rates report -1, no trigger.
	inert := New(Config{Window: 100 * sim.Millisecond, Detect: true, Objective: ms(50)})
	feed(inert, 80, func(int) sim.Time { return ms(1) })
	if inert.Status().Frozen {
		t.Fatal("cache detector fired without a cache provider")
	}
	if pt := inert.Verdict().Observed; pt.HitShort != -1 || pt.HitLong != -1 {
		t.Fatalf("no-cache hit rates = %v/%v, want -1", pt.HitShort, pt.HitLong)
	}
}

// TestDisarmedRecorderOnlyRetains: without Detect the recorder never
// freezes, keeps a sliding window, and the end-of-run verdict has no
// detector but a full series.
func TestDisarmedRecorderOnlyRetains(t *testing.T) {
	r := New(Config{Window: 10 * sim.Millisecond, Objective: ms(5)})
	feed(r, 100, func(int) sim.Time { return ms(20) }) // every one breaches
	st := r.Status()
	if st.Frozen || len(st.Detections) != 0 {
		t.Fatalf("disarmed recorder froze: %+v", st)
	}
	if st.Completions != 100 || st.Breaches != 100 {
		t.Fatalf("counters = %d/%d, want 100/100", st.Completions, st.Breaches)
	}
	if st.Retained >= 100 || st.Retained == 0 {
		t.Fatalf("retained %d of 100 with a 10 ms window", st.Retained)
	}
	v := r.Verdict()
	if v.Detector != "" || v.TriggerMS != 0 {
		t.Fatalf("end-of-run verdict = %+v", v)
	}
	if len(v.Series) == 0 || v.Observed == nil {
		t.Fatalf("end-of-run verdict lost its series: %+v", v)
	}
	// The observation ring slides with the retention window.
	if int64(len(v.Series)) > int64(st.Retained)+1 {
		t.Fatalf("series %d points vs %d retained queries", len(v.Series), st.Retained)
	}
	wl := r.WindowLog()
	if int(wl.CompletedCount()) != st.Retained {
		t.Fatalf("window log %d completions, status retained %d", wl.CompletedCount(), st.Retained)
	}
}

// TestBarrierRing: barrier samples honour the BarrierEvery throttle, the
// final barrier is always captured, samples slide out of the window, and
// a freeze stops sampling.
func TestBarrierRing(t *testing.T) {
	// A real two-domain run: a CrossLink bounds the lookahead to 100 µs so
	// barrier rounds advance in small steps, and self-rescheduling ticks
	// keep both domains busy for 30 ms.
	runEngine := func(r *Recorder) {
		m := sim.NewMultiEngine(2)
		sim.NewCrossLink(m.Domain(0), "link", 1e9, 100*sim.Microsecond)
		for i := 0; i < 2; i++ {
			d := m.Domain(i)
			var tick func()
			tick = func() {
				if d.Now() < ms(30) {
					d.Schedule(100*sim.Microsecond, tick)
				}
			}
			d.At(0, tick)
		}
		m.SetBarrierObserver(r)
		m.Run()
	}
	r := New(Config{Window: 10 * sim.Millisecond, BarrierEvery: ms(1)})
	runEngine(r)
	bars := r.BarrierWindow()
	if len(bars) == 0 {
		t.Fatal("no barrier samples retained")
	}
	// 10 ms window at 1 ms spacing → at most ~12 samples survive
	// (window edge plus the terminating barrier).
	if len(bars) > 13 {
		t.Fatalf("throttle failed: %d samples in a 10-sample window", len(bars))
	}
	// The run ends at the 30 ms frontier; the ring's newest sample must
	// sit there — either the terminating barrier or the same-instant round
	// sample it deduplicated against.
	last := bars[len(bars)-1]
	if last.at != ms(30) {
		t.Fatalf("newest sample at %v, run ended at 30 ms: %+v", last.at, last)
	}
	for i := 1; i < len(bars)-1; i++ {
		if gap := bars[i].at - bars[i-1].at; gap < ms(1) {
			t.Fatalf("samples %d,%d only %v apart", i-1, i, gap)
		}
	}
	if len(last.Domains) != 2 || last.Domains[0].ClockUS == 0 || last.Domains[0].Executed == 0 {
		t.Fatalf("sample missing domain stats: %+v", last)
	}
	// Ring slid: nothing older than the window before the last sample.
	if first := bars[0]; last.at-first.at > 10*sim.Millisecond {
		t.Fatalf("ring kept %v of history, window is 10 ms", last.at-first.at)
	}

	// A frozen recorder never samples.
	frozen := New(Config{Window: 10 * sim.Millisecond, BarrierEvery: ms(1)})
	frozen.mu.Lock()
	frozen.frozen = true
	frozen.mu.Unlock()
	runEngine(frozen)
	if n := len(frozen.BarrierWindow()); n != 0 {
		t.Fatalf("frozen recorder sampled %d barriers", n)
	}
}

// TestBarrierTee: nil sides collapse to the other operand; a real tee
// notifies a before b.
func TestBarrierTee(t *testing.T) {
	if BarrierTee(nil, nil) != nil {
		t.Fatal("BarrierTee(nil, nil) must be nil")
	}
	r := New(Config{})
	if BarrierTee(r, nil) != sim.BarrierObserver(r) || BarrierTee(nil, r) != sim.BarrierObserver(r) {
		t.Fatal("nil side must collapse to the operand itself")
	}
	var order []string
	a := obsFunc(func() { order = append(order, "a") })
	b := obsFunc(func() { order = append(order, "b") })
	BarrierTee(a, b).OnBarrier(sim.NewMultiEngine(1), nil, false)
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("tee order = %v", order)
	}
}

// obsFunc adapts a func to sim.BarrierObserver for ordering checks.
type obsFunc func()

func (f obsFunc) OnBarrier(*sim.MultiEngine, []int, bool) { f() }
