package experiments

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// StageScan labels the co-tenant's scan jobs.
const StageScan = "LogScan"

// MultiTenantResult measures the §III claim that decoupling configuration
// from host code lets "GAM balance the hardware resources during runtime":
// the CBIR pipeline shares the hierarchy with a second tenant (a
// near-storage log-scan workload) and the experiment reports how much CBIR
// throughput/latency degrade and what the scan achieves, compared with
// each tenant running alone.
type MultiTenantResult struct {
	CBIRAloneTput  float64
	CBIRSharedTput float64
	CBIRAloneLat   sim.Time
	CBIRSharedLat  sim.Time
	ScanAloneSec   float64
	ScanSharedSec  float64
	// Prioritised: same sharing, but CBIR jobs carry a higher GAM
	// priority — the runtime-balancing knob of §III.
	CBIRPrioTput float64
	CBIRPrioLat  sim.Time
	ScanPrioSec  float64
}

const (
	mtBatches   = 6
	mtScanJobs  = 6
	mtScanBytes = int64(24e9) // 24 GB of logs scanned per job, striped over 4 SSDs
)

// buildScanJob builds one bulk tenant job: a log scan striped over the 4
// SSDs. Scans are chunked (16 tasks per device per job) per the §II-D
// granularity rule: small enough that the GAM can slot the
// latency-sensitive tenant's tasks between chunks, large enough to
// amortise per-task overhead.
func buildScanJob(sys *core.System, id int) (*core.Job, error) {
	knn, err := sys.Registry().Lookup("KNN-ZCU9")
	if err != nil {
		return nil, err
	}
	const chunks = 16
	j := core.NewJob(id)
	for i := 0; i < 4; i++ {
		for c := 0; c < chunks; c++ {
			n := j.AddTask(accel.Task{
				Name: fmt.Sprintf("scan%d.%d", i, c), Stage: StageScan, Kernel: knn,
				MACs:   float64(mtScanBytes) / 64 / 4 / chunks,
				Bytes:  mtScanBytes / 4 / chunks,
				Source: accel.SourceSSD, Pattern: storage.Sequential,
			}, accel.NearStorage)
			n.Pin = i
			n.OutBytes = 1 << 16
			n.SinkToHost = true
		}
	}
	return j, nil
}

// tenantsSpec declares one shared-hierarchy run. The bulk tenant's
// mtScanJobs jobs take ids 0..mtScanJobs-1 and are submitted first (batch
// analytics already running when interactive queries arrive) — without
// priorities the GAM's oldest-job-first ordering favours them. The CBIR
// jobs follow with the given priority.
func tenantsSpec(name string, m workload.Model, cbir, scan bool, cbirPriority int) RunSpec {
	batches := 0
	scanJobs := 0
	if scan {
		scanJobs = mtScanJobs
		batches += mtScanJobs
	}
	if cbir {
		batches += mtBatches
	}
	return RunSpec{
		Name:      name,
		Model:     m,
		Mapping:   ReACHMapping(),
		Instances: 4,
		Batches:   batches,
		BuildJob: func(sys *core.System, id int) (*core.Job, error) {
			if id < scanJobs {
				return buildScanJob(sys, id)
			}
			j, err := BuildPipelineJob(sys, id, m, ReACHMapping())
			if err != nil {
				return nil, err
			}
			j.Priority = cbirPriority
			return j, nil
		},
	}
}

type tenantRun struct {
	cbirSpan         sim.Time
	cbirFirstLatency sim.Time
	scanSpan         sim.Time
}

// tenantSpans reduces a shared run to per-tenant makespans, splitting the
// jobs by id (scan jobs first).
func tenantSpans(run *RunResult, cbir, scan bool) *tenantRun {
	out := &tenantRun{}
	scanJobs := run.Jobs
	var cbirJobs []*core.Job
	if scan && cbir {
		scanJobs, cbirJobs = run.Jobs[:mtScanJobs], run.Jobs[mtScanJobs:]
	} else if cbir {
		scanJobs, cbirJobs = nil, run.Jobs
	}
	if cbir {
		out.cbirSpan = cbirJobs[len(cbirJobs)-1].FinishedAt - cbirJobs[0].SubmittedAt
		out.cbirFirstLatency = cbirJobs[0].Latency()
	}
	if scan {
		out.scanSpan = scanJobs[len(scanJobs)-1].FinishedAt - scanJobs[0].SubmittedAt
	}
	return out
}

// multiTenantSpecs is the run matrix: CBIR alone, scan alone, both tenants
// sharing, and both with CBIR prioritised.
func multiTenantSpecs(m workload.Model) []RunSpec {
	return []RunSpec{
		PipelineSpec("multitenant cbir-alone", m, ReACHMapping(), 4, mtBatches),
		tenantsSpec("multitenant scan-alone", m, false, true, 0),
		tenantsSpec("multitenant shared", m, true, true, 0),
		tenantsSpec("multitenant shared-prio", m, true, true, 10),
	}
}

// MultiTenant runs the three configurations (CBIR alone, scan alone, both).
func MultiTenant(m workload.Model, opts ...Option) (*MultiTenantResult, error) {
	runs, err := RunSpecs(multiTenantSpecs(m), opts...)
	if err != nil {
		return nil, err
	}
	res := &MultiTenantResult{}

	cbirAlone := runs[0]
	res.CBIRAloneTput = cbirAlone.ThroughputBatchesPerSec()
	res.CBIRAloneLat = cbirAlone.Latency

	scanAlone := tenantSpans(runs[1], false, true)
	res.ScanAloneSec = scanAlone.scanSpan.Seconds()

	both := tenantSpans(runs[2], true, true)
	res.CBIRSharedTput = float64(mtBatches) / both.cbirSpan.Seconds()
	res.CBIRSharedLat = both.cbirFirstLatency
	res.ScanSharedSec = both.scanSpan.Seconds()

	prio := tenantSpans(runs[3], true, true)
	res.CBIRPrioTput = float64(mtBatches) / prio.cbirSpan.Seconds()
	res.CBIRPrioLat = prio.cbirFirstLatency
	res.ScanPrioSec = prio.scanSpan.Seconds()
	return res, nil
}

// CBIRSlowdown reports shared/alone throughput degradation.
func (r *MultiTenantResult) CBIRSlowdown() float64 {
	return 1 - r.CBIRSharedTput/r.CBIRAloneTput
}

// Table renders the comparison.
func (r *MultiTenantResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Extension — multi-tenant hierarchy (CBIR + near-storage log scan)",
		Columns: []string{"Metric", "Alone", "Shared"},
	}
	t.Columns = append(t.Columns, "Shared, CBIR prioritised")
	t.AddRow("CBIR throughput (batches/s)", report.F(r.CBIRAloneTput, 2),
		report.F(r.CBIRSharedTput, 2), report.F(r.CBIRPrioTput, 2))
	t.AddRow("CBIR first-batch latency (ms)", report.F(r.CBIRAloneLat.Milliseconds(), 1),
		report.F(r.CBIRSharedLat.Milliseconds(), 1), report.F(r.CBIRPrioLat.Milliseconds(), 1))
	t.AddRow("Scan makespan (s)", report.F(r.ScanAloneSec, 2),
		report.F(r.ScanSharedSec, 2), report.F(r.ScanPrioSec, 2))
	t.AddNote("the GAM interleaves both tenants' tasks on the shared near-storage instances; CBIR loses %s throughput",
		report.Pct(r.CBIRSlowdown()))
	return t
}
