package experiments

import (
	"context"
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/qtrace"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// RunSpec declares one independent simulation run: which system to build,
// which workload and mapping to run on it, how many batch jobs to submit,
// and how to attribute background energy afterwards. Every experiment in
// this package is a slice of RunSpecs plus a pure reducer over the
// resulting []*RunResult; RunSpecs executes the slice on the shared
// parallel runner. Each run owns its own core.System and event engine, so
// runs are independent and the results are byte-for-byte identical
// whatever the worker count.
type RunSpec struct {
	// Name labels the run in progress reports and errors.
	Name string
	// Model is the CBIR workload model; it is validated before the run.
	Model workload.Model
	// Mapping assigns pipeline stages to compute levels. Used by the
	// default job builder and, with Instances, by the default config.
	Mapping Mapping
	// Instances is the near-data population per used level for the
	// default config (configFor semantics).
	Instances int
	// Batches is the number of jobs submitted (ids 0..Batches-1).
	Batches int

	// Config, when non-nil, replaces the default configFor(Mapping,
	// Instances) system config.
	Config *config.SystemConfig
	// Mutate, when non-nil, adjusts the config before the system is
	// built — how the ablations vary GAM parameters per run.
	Mutate func(*config.SystemConfig)
	// Setup, when non-nil, runs after the system is built and before any
	// job is submitted (e.g. to tweak accelerator instances).
	Setup func(sys *core.System) error
	// BuildJob, when non-nil, replaces the default pipeline job builder
	// (BuildPipelineJob with Mapping) — how the granularity, skew,
	// reverse-lookup and multi-tenant experiments shape their jobs.
	BuildJob func(sys *core.System, id int) (*core.Job, error)
	// SubmitAt, when non-nil, schedules job id's submission at the
	// returned simulated time instead of submitting everything at t=0 —
	// the open-loop arrival processes of the load sweep.
	SubmitAt func(id int) sim.Time
	// Background selects the post-run background-energy attribution.
	// The zero value charges nothing.
	Background BackgroundMode
	// BackgroundLabel is the stage label for BackgroundFirstLatency.
	BackgroundLabel string

	// Metrics, when non-nil, attaches a time-resolved observability
	// recorder to the run: a periodic registry sampler and (when
	// Metrics.Spans is set) the GAM decision-span log. The recorder rides
	// back on RunResult.Obs. Nil — the default — leaves the run entirely
	// uninstrumented, so results are byte-identical to pre-metrics builds.
	Metrics *metrics.Options

	// QTrace, when non-nil, attaches a per-query trace log to the run: every
	// job gets a recorded timeline of phase intervals and completed queries
	// feed the tail-latency sketch. The log rides back on RunResult.QLog.
	// Nil — the default — keeps the GAM's query hooks at a single nil check.
	QTrace *qtrace.Options
}

// BackgroundMode is a RunSpec's background-energy attribution policy,
// applied once after the simulation drains.
type BackgroundMode int

const (
	// BackgroundNone charges no background energy (experiments that only
	// report runtime/throughput).
	BackgroundNone BackgroundMode = iota
	// BackgroundStageSpan charges background power over the makespan,
	// split across stages in proportion to the first job's per-stage
	// busy spans (the end-to-end pipeline experiments).
	BackgroundStageSpan
	// BackgroundMakespanRR charges the whole makespan to the rerank
	// stage (the GAM ablation's convention).
	BackgroundMakespanRR
	// BackgroundFirstLatency charges the first job's latency to
	// BackgroundLabel (the isolated single-stage runs of Figs. 9-11).
	BackgroundFirstLatency
)

// Run executes the spec to completion and returns its result. It is the
// single-run core under RunPipeline, RunStage and every sweep.
func (s RunSpec) Run() (*RunResult, error) {
	if err := s.Model.Validate(); err != nil {
		return nil, err
	}
	if s.Batches <= 0 {
		return nil, fmt.Errorf("experiments: run %q needs at least one batch", s.Name)
	}
	cfg := configFor(s.Mapping, s.Instances)
	if s.Config != nil {
		cfg = *s.Config
	}
	if s.Mutate != nil {
		s.Mutate(&cfg)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	if s.Setup != nil {
		if err := s.Setup(sys); err != nil {
			return nil, err
		}
	}
	build := s.BuildJob
	if build == nil {
		build = func(sys *core.System, id int) (*core.Job, error) {
			return BuildPipelineJob(sys, id, s.Model, s.Mapping)
		}
	}
	res := &RunResult{Sys: sys, Batches: s.Batches, StageSpan: make(map[string]sim.Time)}
	if s.Metrics != nil {
		res.Obs = metrics.Attach(sys.Engine(), *s.Metrics)
		if res.Obs.Spans != nil {
			sys.GAM().SetSpanLog(res.Obs.Spans)
		}
	}
	if s.QTrace != nil {
		res.QLog = qtrace.NewLog(*s.QTrace)
		sys.GAM().SetQueryLog(res.QLog)
	}
	for b := 0; b < s.Batches; b++ {
		j, err := build(sys, b)
		if err != nil {
			return nil, err
		}
		if s.SubmitAt == nil {
			if err := sys.GAM().Submit(j); err != nil {
				return nil, err
			}
		} else {
			job := j
			sys.Engine().At(s.SubmitAt(b), func() {
				if err := sys.GAM().Submit(job); err != nil {
					panic(err) // surfaces as a runner PanicError
				}
			})
		}
		res.Jobs = append(res.Jobs, j)
	}
	sys.Run()
	if res.Obs != nil {
		res.Obs.Finish()
	}

	for _, j := range res.Jobs {
		if !j.Done() {
			return nil, fmt.Errorf("experiments: %s: job %d did not complete", s.name(), j.ID)
		}
	}
	first, last := res.Jobs[0], res.Jobs[s.Batches-1]
	res.Latency = first.Latency()
	res.Makespan = last.FinishedAt - first.SubmittedAt

	// The first batch's per-stage earliest-dispatch to latest-completion
	// windows, for the figure reducers and the stage-span background
	// split.
	type span struct{ lo, hi sim.Time }
	spans := map[string]*span{}
	for _, node := range first.Nodes {
		st := node.Spec.Stage
		sp, ok := spans[st]
		if !ok {
			spans[st] = &span{lo: node.DispatchedAt, hi: node.CompletedAt}
			continue
		}
		if node.DispatchedAt < sp.lo {
			sp.lo = node.DispatchedAt
		}
		if node.CompletedAt > sp.hi {
			sp.hi = node.CompletedAt
		}
	}
	var totalSpan sim.Time
	for st, sp := range spans {
		res.StageSpan[st] = sp.hi - sp.lo
		totalSpan += sp.hi - sp.lo
	}

	switch s.Background {
	case BackgroundStageSpan:
		// Background power over the makespan, split across stages by
		// busy share so the Fig. 8 stacking has a home for it.
		if totalSpan > 0 {
			for st, sp := range res.StageSpan {
				frac := float64(sp) / float64(totalSpan)
				window := sim.Time(float64(res.Makespan) * frac)
				sys.Background(st, window)
			}
		} else {
			sys.Background(StageRR, res.Makespan)
		}
	case BackgroundMakespanRR:
		sys.Background(StageRR, res.Makespan)
	case BackgroundFirstLatency:
		sys.Background(s.BackgroundLabel, res.Latency)
	}
	return res, nil
}

func (s RunSpec) name() string {
	if s.Name != "" {
		return s.Name
	}
	return "run"
}

// runOptions collects the execution knobs shared by every experiment
// entry point.
type runOptions struct {
	ctx      context.Context
	workers  int
	pool     *runner.Pool
	progress func(done, total int, name string)
	metrics  *metrics.Options
	observe  func(run string, res *RunResult)
	qtrace   *qtrace.Options
	qobserve func(run string, res *RunResult)
	// clusterPJ >= 0 overrides ClusterConfig.ParallelDomains for cluster
	// experiments (-1 leaves the config's own value in force).
	clusterPJ int
	// clusterObs/clObserve attach barrier-driven observability to cluster
	// experiments (see WithClusterObs in clustersweep.go).
	clusterObs *metrics.Options
	clObserve  ClusterObserver
}

// Option adjusts how an experiment executes its runs (not what it
// simulates): worker count, shared concurrency pool, cancellation
// context, progress reporting.
type Option func(*runOptions)

// WithWorkers bounds the experiment's private worker pool (<= 0 means
// GOMAXPROCS). Ignored when a shared pool is set.
func WithWorkers(n int) Option { return func(o *runOptions) { o.workers = n } }

// WithPool runs the experiment's simulations on a concurrency budget
// shared with other experiments — how `reachsim -exp all -j N` bounds the
// whole evaluation at N in-flight simulations.
func WithPool(p *runner.Pool) Option { return func(o *runOptions) { o.pool = p } }

// WithContext attaches a cancellation context to the runs.
func WithContext(ctx context.Context) Option { return func(o *runOptions) { o.ctx = ctx } }

// WithProgress reports each completed run. The callback is serialised.
func WithProgress(fn func(done, total int, name string)) Option {
	return func(o *runOptions) { o.progress = fn }
}

// WithMetrics attaches a time-resolved observability recorder to every
// RunSpec of the experiment that does not already carry one, and — after
// all runs complete — reports each sampled result through observe, in spec
// order (deterministic regardless of worker count). observe may be nil
// when the caller reads recorders off the experiment's own result type.
// Experiments whose unit of work is not a RunSpec (recall sweep,
// motivation, buffer ablation) have no simulation engine to sample and
// ignore this option.
func WithMetrics(mo metrics.Options, observe func(run string, res *RunResult)) Option {
	return func(o *runOptions) {
		o.metrics = &mo
		o.observe = observe
	}
}

// WithQTrace attaches a per-query trace log to every RunSpec of the
// experiment that does not already carry one, and — after all runs
// complete — reports each traced result through observe in spec order
// (deterministic regardless of worker count). observe may be nil when the
// caller reads logs off the experiment's own result type. Same scope as
// WithMetrics: experiments whose unit of work is not a RunSpec ignore it.
func WithQTrace(qo qtrace.Options, observe func(run string, res *RunResult)) Option {
	return func(o *runOptions) {
		o.qtrace = &qo
		o.qobserve = observe
	}
}

// WithClusterParallel sets how many worker goroutines each cluster
// simulation uses for its event domains (sim.MultiEngine workers),
// overriding ClusterConfig.ParallelDomains; n = 0 or 1 is serial. This is
// orthogonal to WithWorkers/WithPool, which bound how many independent
// simulations run at once: -j spends cores across sweep cells, -pj spends
// them inside one cluster. Results are byte-identical at any value.
// Experiments without a cluster ignore it.
func WithClusterParallel(n int) Option {
	return func(o *runOptions) { o.clusterPJ = n }
}

func buildOptions(opts []Option) runOptions {
	o := runOptions{ctx: context.Background(), clusterPJ: -1}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

func (o runOptions) runnerOptions(name func(i int) string) runner.Options {
	ro := runner.Options{Workers: o.workers, Pool: o.pool}
	if o.progress != nil {
		progress := o.progress
		ro.Progress = func(e runner.Event) { progress(e.Done, e.Total, name(e.Index)) }
	}
	return ro
}

// RunSpecs executes the specs on the parallel runner and returns their
// results in spec order, regardless of completion order. The first
// failing spec cancels the rest.
func RunSpecs(specs []RunSpec, opts ...Option) ([]*RunResult, error) {
	o := buildOptions(opts)
	if o.metrics != nil || o.qtrace != nil {
		// Copy before instrumenting: the caller's slice stays untouched.
		instrumented := append([]RunSpec(nil), specs...)
		for i := range instrumented {
			if o.metrics != nil && instrumented[i].Metrics == nil {
				instrumented[i].Metrics = o.metrics
			}
			if o.qtrace != nil {
				switch {
				case instrumented[i].QTrace == nil:
					instrumented[i].QTrace = o.qtrace
				case instrumented[i].QTrace.Observer == nil && o.qtrace.Observer != nil:
					// The observer is an execution knob, not part of the
					// spec: specs carrying their own trace options (the
					// tail-latency sweep) still feed the caller's live
					// observer. Copy so the spec's Options stay untouched.
					qo := *instrumented[i].QTrace
					qo.Observer = o.qtrace.Observer
					instrumented[i].QTrace = &qo
				}
			}
		}
		specs = instrumented
	}
	res, err := runner.Map(o.ctx, o.runnerOptions(func(i int) string { return specs[i].name() }), specs,
		func(_ context.Context, _ int, s RunSpec) (*RunResult, error) { return s.Run() })
	if err == nil && o.observe != nil {
		for i, r := range res {
			if r != nil && r.Obs != nil {
				o.observe(specs[i].name(), r)
			}
		}
	}
	if err == nil && o.qobserve != nil {
		for i, r := range res {
			if r != nil && r.QLog != nil {
				o.qobserve(specs[i].name(), r)
			}
		}
	}
	return res, err
}

// mapRuns fans an arbitrary per-item function over the runner with the
// experiment options — for the functional-layer experiments (recall,
// motivation, buffer ablation) whose unit of work is not a RunSpec.
func mapRuns[S, R any](o runOptions, items []S, name func(i int) string, fn func(item S) (R, error)) ([]R, error) {
	return runner.Map(o.ctx, o.runnerOptions(name), items,
		func(_ context.Context, _ int, item S) (R, error) { return fn(item) })
}
