package metrics

import (
	"sort"

	"repro/internal/sim"
)

// chunkSize is the column chunk length: large enough that steady-state
// sampling is pure in-chunk appends (zero allocations per sample), small
// enough that a short run does not over-reserve.
const chunkSize = 4096

// column is chunked int64 storage: append never moves recorded data and
// only allocates at chunk boundaries, so the sampler's hot path is
// allocation-free between boundaries.
type column struct {
	chunks [][]int64
	n      int
}

func (c *column) append(v int64) {
	if k := len(c.chunks); k == 0 || len(c.chunks[k-1]) == chunkSize {
		c.chunks = append(c.chunks, make([]int64, 0, chunkSize))
	}
	k := len(c.chunks) - 1
	c.chunks[k] = append(c.chunks[k], v)
	c.n++
}

func (c *column) at(i int) int64 { return c.chunks[i/chunkSize][i%chunkSize] }

func (c *column) len() int { return c.n }

// Point is one recorded sample of one resource: the cumulative registry
// counters plus the instantaneous occupancy at the sample instant.
type Point struct {
	Occupancy int
	Ops       uint64
	Bytes     uint64
	Busy      sim.Time
	Wait      sim.Time
	Stalls    uint64
}

// Series is the time series of one registered resource. Resources that
// register mid-run (e.g. the GAM's lazily created stream buffers) start at
// a later global sample index; Start reports it.
type Series struct {
	Name string
	Kind sim.ResourceKind

	start int // global sample index of the first point

	occupancy column
	ops       column
	bytes     column
	busy      column
	wait      column
	stalls    column
}

// Start reports the global sample index of the series' first point.
func (s *Series) Start() int { return s.start }

// Len reports the number of recorded points.
func (s *Series) Len() int { return s.occupancy.len() }

// At returns the i-th recorded point (0 ≤ i < Len).
func (s *Series) At(i int) Point {
	return Point{
		Occupancy: int(s.occupancy.at(i)),
		Ops:       uint64(s.ops.at(i)),
		Bytes:     uint64(s.bytes.at(i)),
		Busy:      sim.Time(s.busy.at(i)),
		Wait:      sim.Time(s.wait.at(i)),
		Stalls:    uint64(s.stalls.at(i)),
	}
}

// seriesSet is the shared per-resource series store of the two samplers
// (single-engine Sampler, barrier-driven MultiSampler): a map for lookup,
// first-seen order for iteration, and the global sample counter that
// anchors Series.Start for resources registering mid-run.
type seriesSet struct {
	series  map[string]*Series
	ordered []*Series // first-seen order; sorted on demand at export
	samples int
}

func newSeriesSet() seriesSet {
	return seriesSet{series: make(map[string]*Series)}
}

// record appends the resource's current counters to its series, creating
// the series at the current global sample index on first sight.
func (ss *seriesSet) record(name string, res sim.Resource) {
	se := ss.series[name]
	if se == nil {
		se = &Series{Name: name, start: ss.samples}
		ss.series[name] = se
		ss.ordered = append(ss.ordered, se)
	}
	st := res.ResourceStats()
	se.Kind = st.Kind
	se.occupancy.append(int64(st.Occupancy))
	se.ops.append(int64(st.Ops))
	se.bytes.append(int64(st.Bytes))
	se.busy.append(int64(st.Busy))
	se.wait.append(int64(st.Wait))
	se.stalls.append(int64(st.Stalls))
}

// sorted returns every series sorted by resource name — the deterministic
// export order (allocates; call at export time, not from the hot path).
func (ss *seriesSet) sorted() []*Series {
	out := make([]*Series, len(ss.ordered))
	copy(out, ss.ordered)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Sampler walks the engine's StatsRegistry on a fixed simulated-time
// period and appends one Point per registered resource. It schedules
// itself on the calendar and stops rescheduling once it is the only
// pending event, so an attached sampler never keeps a drained simulation
// alive.
type Sampler struct {
	eng      *sim.Engine
	interval sim.Time

	times column // sample instants, shared time axis for every series
	seriesSet

	walkFn  func(name string, res sim.Resource) // bound once: no per-sample closure
	pending sim.EventHandle
}

// NewSampler creates a sampler on eng; interval <= 0 means
// DefaultInterval. Call Start to schedule the first tick.
func NewSampler(eng *sim.Engine, interval sim.Time) *Sampler {
	if interval <= 0 {
		interval = DefaultInterval
	}
	s := &Sampler{
		eng:       eng,
		interval:  interval,
		seriesSet: newSeriesSet(),
	}
	s.walkFn = s.record
	return s
}

// Interval reports the sampling period.
func (s *Sampler) Interval() sim.Time { return s.interval }

// Samples reports how many sample instants were recorded.
func (s *Sampler) Samples() int { return s.times.len() }

// Time reports the simulated time of the i-th sample instant.
func (s *Sampler) Time(i int) sim.Time { return sim.Time(s.times.at(i)) }

// Start schedules the first tick, one interval from now.
func (s *Sampler) Start() {
	s.pending = s.eng.ScheduleCall(s.interval, s, 0)
}

// Fire implements sim.Handler: take a sample and re-arm while the
// simulation still has work pending. When the sampler's own event was the
// last one in the calendar the run is over and it stops, so attaching a
// sampler never prevents Engine.Run from terminating.
func (s *Sampler) Fire(eng *sim.Engine, _ uint64) {
	s.pending = sim.EventHandle{}
	s.sampleNow()
	if eng.Pending() > 0 {
		s.pending = eng.ScheduleCall(s.interval, s, 0)
	}
}

// Finish cancels any pending tick and takes the closing sample at the
// current (end-of-run) time, so attributions over the full run window see
// final counter values. Safe to call once after Engine.Run returns.
func (s *Sampler) Finish() {
	s.pending.Cancel()
	s.pending = sim.EventHandle{}
	if n := s.times.len(); n == 0 || sim.Time(s.times.at(n-1)) != s.eng.Now() {
		s.sampleNow()
	}
}

// sampleNow records one sample instant across every registered resource.
func (s *Sampler) sampleNow() {
	s.times.append(int64(s.eng.Now()))
	s.eng.Stats().Walk(s.walkFn)
	s.samples++
}

// Series returns every recorded series sorted by resource name — the
// deterministic export order (allocates; call at export time, not from
// the hot path).
func (s *Sampler) Series() []*Series { return s.sorted() }

// Lookup finds one series by resource name.
func (s *Sampler) Lookup(name string) (*Series, bool) {
	se, ok := s.series[name]
	return se, ok
}
