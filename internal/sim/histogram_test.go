package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram not zeroed")
	}
	for i := 1; i <= 100; i++ {
		h.Add(Time(i) * Millisecond)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Min() != Millisecond || h.Max() != 100*Millisecond {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Mean(); got != Time(50.5*float64(Millisecond)) {
		t.Errorf("mean = %v, want 50.5ms", got)
	}
	if got := h.Quantile(0.5); got != 50*Millisecond {
		t.Errorf("p50 = %v, want 50ms", got)
	}
	if got := h.Quantile(0.99); got != 99*Millisecond {
		t.Errorf("p99 = %v, want 99ms", got)
	}
	if got := h.Quantile(1.0); got != 100*Millisecond {
		t.Errorf("p100 = %v, want max", got)
	}
	if got := h.Quantile(0); got != Millisecond {
		t.Errorf("p0 = %v, want min", got)
	}
	if h.String() == "" || h.String() == "histogram{empty}" {
		t.Error("summary wrong")
	}
}

func TestHistogramPanics(t *testing.T) {
	h := NewHistogram()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty quantile did not panic")
			}
		}()
		h.Quantile(0.5)
	}()
	h.Add(Second)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range quantile did not panic")
			}
		}()
		h.Quantile(1.5)
	}()
}

// Property: quantiles are monotone in q and bounded by min/max, for any
// sample set and insertion order.
func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8)%200 + 1
		h := NewHistogram()
		for i := 0; i < n; i++ {
			h.Add(Time(rng.Int63n(1_000_000)))
		}
		prev := h.Quantile(0)
		for q := 0.1; q <= 1.0; q += 0.1 {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return h.Quantile(0) >= h.Min() && h.Quantile(1) <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestHistogramSingleSample: every quantile of a one-sample histogram is
// that sample.
func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Add(7 * Microsecond)
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 7*Microsecond {
			t.Errorf("q=%v: got %v, want 7µs", q, got)
		}
	}
	if h.Min() != 7*Microsecond || h.Max() != 7*Microsecond || h.Mean() != 7*Microsecond {
		t.Errorf("min/mean/max = %v/%v/%v, want 7µs each", h.Min(), h.Mean(), h.Max())
	}
}

// TestHistogramAllDecimated: a bounded histogram driven far past its cap
// keeps exact offered counts, bounded storage, and quantiles that remain
// within the sample range with exact extremes — the all-in-overflow edge
// of the decimating design.
func TestHistogramAllDecimated(t *testing.T) {
	const cap = 16
	h := NewBoundedHistogram(cap)
	const n = 10_000
	for i := 1; i <= n; i++ {
		h.Add(Time(i) * Nanosecond)
	}
	if h.Adds() != n {
		t.Fatalf("adds = %d, want %d", h.Adds(), n)
	}
	if h.Count() >= cap {
		t.Fatalf("stored %d samples, cap %d", h.Count(), cap)
	}
	if h.Count() == 0 {
		t.Fatal("decimation dropped every sample")
	}
	lo, hi := h.Quantile(0), h.Quantile(1)
	if lo < Nanosecond || hi > n*Nanosecond || lo > hi {
		t.Fatalf("quantile range %v..%v outside sample range", lo, hi)
	}
	if med := h.Quantile(0.5); med < lo || med > hi {
		t.Fatalf("median %v outside [%v, %v]", med, lo, hi)
	}
}
