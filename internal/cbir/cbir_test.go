package cbir

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/workload"
)

func testDataset(t *testing.T, n, d, clusters int) *workload.Dataset {
	t.Helper()
	return workload.Synthetic(workload.SyntheticParams{
		N: n, D: d, Clusters: clusters, Spread: 0.06, Seed: 123,
	})
}

func TestKMeansConvergesOnSeparatedClusters(t *testing.T) {
	ds := testDataset(t, 1200, 16, 6)
	km, err := KMeans(ds.Vectors, 6, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if km.Moved != 0 {
		t.Errorf("kmeans did not converge in 50 iters (moved=%d)", km.Moved)
	}
	// Each found centroid should be very near one generating centre.
	for c := 0; c < 6; c++ {
		best := float32(1e30)
		for g := 0; g < 6; g++ {
			if d := kernels.SquaredL2(km.Centroids.Row(c), ds.Centers.Row(g)); d < best {
				best = d
			}
		}
		if best > 0.25 {
			t.Errorf("centroid %d is %.3f away from every generating centre", c, best)
		}
	}
}

func TestKMeansDeterministic(t *testing.T) {
	ds := testDataset(t, 400, 8, 4)
	a, _ := KMeans(ds.Vectors, 4, 20, 7)
	b, _ := KMeans(ds.Vectors, 4, 20, 7)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same-seed kmeans differs")
		}
	}
}

func TestKMeansErrors(t *testing.T) {
	ds := testDataset(t, 10, 4, 2)
	if _, err := KMeans(ds.Vectors, 0, 10, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans(ds.Vectors, 11, 10, 1); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := KMeans(ds.Vectors, 2, 0, 1); err == nil {
		t.Error("maxIters=0 accepted")
	}
}

func TestKMeansAssignmentsAreNearest(t *testing.T) {
	ds := testDataset(t, 500, 8, 5)
	km, _ := KMeans(ds.Vectors, 5, 30, 2)
	// Post-convergence invariant: every point is assigned to its nearest
	// centroid.
	for i := 0; i < ds.N(); i++ {
		row := ds.Vectors.Row(i)
		best, bestD := 0, kernels.SquaredL2(row, km.Centroids.Row(0))
		for c := 1; c < 5; c++ {
			if d := kernels.SquaredL2(row, km.Centroids.Row(c)); d < bestD {
				best, bestD = c, d
			}
		}
		if km.Assign[i] != best {
			t.Fatalf("point %d assigned to %d, nearest is %d", i, km.Assign[i], best)
		}
	}
}

func TestIndexListsPartitionDatabase(t *testing.T) {
	ds := testDataset(t, 2000, 16, 8)
	ix, err := BuildIndex(ds.Vectors, 8, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, ds.N())
	total := 0
	for _, list := range ix.Lists {
		for _, id := range list {
			if seen[id] {
				t.Fatalf("point %d in two lists", id)
			}
			seen[id] = true
			total++
		}
	}
	if total != ds.N() {
		t.Errorf("lists cover %d points, want %d", total, ds.N())
	}
	lo, med, hi := ix.ListSizeStats()
	if lo < 0 || med <= 0 || hi < med {
		t.Errorf("list stats %d/%d/%d inconsistent", lo, med, hi)
	}
}

func TestShortlistFindsQueryCluster(t *testing.T) {
	ds := testDataset(t, 3000, 24, 10)
	ix, _ := BuildIndex(ds.Vectors, 10, 30, 4)
	queries := ds.Queries(8, 0.01, 99)
	lists, err := ix.Shortlist(queries, 2)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < queries.Rows; b++ {
		if len(lists[b]) != 2 {
			t.Fatalf("query %d got %d probes", b, len(lists[b]))
		}
		// The top probe must be the centroid nearest the query.
		q := queries.Row(b)
		best, bestD := 0, kernels.SquaredL2(q, ix.Centroids.Row(0))
		for c := 1; c < ix.M(); c++ {
			if d := kernels.SquaredL2(q, ix.Centroids.Row(c)); d < bestD {
				best, bestD = c, d
			}
		}
		if lists[b][0] != best {
			t.Errorf("query %d top probe %d, nearest centroid %d", b, lists[b][0], best)
		}
	}
	if _, err := ix.Shortlist(queries, 0); err == nil {
		t.Error("probes=0 accepted")
	}
	if _, err := ix.Shortlist(queries, ix.M()+1); err == nil {
		t.Error("probes>M accepted")
	}
}

func TestCandidatesRoundRobinAndBounds(t *testing.T) {
	ds := testDataset(t, 1000, 8, 4)
	ix, _ := BuildIndex(ds.Vectors, 4, 20, 5)
	clusters := []int{0, 1}
	cands := ix.Candidates(clusters, 50)
	if len(cands) != 50 {
		t.Errorf("got %d candidates, want 50", len(cands))
	}
	// All candidates must come from the probed clusters.
	inProbed := map[int]bool{}
	for _, c := range clusters {
		for _, id := range ix.Lists[c] {
			inProbed[id] = true
		}
	}
	for _, id := range cands {
		if !inProbed[id] {
			t.Fatalf("candidate %d not in probed clusters", id)
		}
	}
	// Asking for more than available returns everything once.
	all := ix.Candidates(clusters, 1<<20)
	if len(all) != len(ix.Lists[0])+len(ix.Lists[1]) {
		t.Errorf("exhaustive gather = %d, want %d", len(all), len(ix.Lists[0])+len(ix.Lists[1]))
	}
	if got := ix.Candidates(clusters, 0); got != nil {
		t.Errorf("zero candidates returned %v", got)
	}
}

func TestRerankExactOverCandidates(t *testing.T) {
	ds := testDataset(t, 800, 16, 4)
	ix, _ := BuildIndex(ds.Vectors, 4, 20, 6)
	q := ds.Queries(1, 0.01, 55).Row(0)
	cands := ix.Candidates([]int{0, 1, 2, 3}, 800)
	got := ix.Rerank(q, cands, 5)
	want := kernels.BruteForceKNN(ds.Vectors, q, 5)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("rerank over all candidates differs from brute force at %d: %+v vs %+v",
				i, got[i], want[i])
		}
	}
}

func TestEndToEndRecall(t *testing.T) {
	// The headline functional property: IVF search with modest probing
	// preserves high recall (the paper's argument for NDP over lossy
	// compression).
	ds := testDataset(t, 8000, 32, 32)
	ix, err := BuildIndex(ds.Vectors, 32, 25, 8)
	if err != nil {
		t.Fatal(err)
	}
	queries := ds.Queries(16, 0.02, 777)
	recall, err := ix.RecallAtK(queries, SearchParams{Probes: 8, Candidates: 2048, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if recall < 0.9 {
		t.Errorf("recall@10 = %.3f, want >= 0.9", recall)
	}
	// Fewer probes must not increase recall.
	lowRecall, _ := ix.RecallAtK(queries, SearchParams{Probes: 1, Candidates: 2048, K: 10})
	if lowRecall > recall+1e-9 {
		t.Errorf("recall with 1 probe (%.3f) exceeds recall with 8 (%.3f)", lowRecall, recall)
	}
}

func TestSearchReturnsKResults(t *testing.T) {
	ds := testDataset(t, 1000, 16, 8)
	ix, _ := BuildIndex(ds.Vectors, 8, 20, 9)
	queries := ds.Queries(4, 0.02, 11)
	res, err := ix.Search(queries, SearchParams{Probes: 3, Candidates: 256, K: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d result sets", len(res))
	}
	for b, r := range res {
		if len(r) != 7 {
			t.Errorf("query %d returned %d results, want 7", b, len(r))
		}
		for i := 1; i < len(r); i++ {
			if r[i].Dist < r[i-1].Dist {
				t.Errorf("query %d results not sorted", b)
			}
		}
	}
}
