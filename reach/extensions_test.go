package reach

import (
	"strings"
	"testing"
)

func TestRegisterTemplateAndUse(t *testing.T) {
	s, err := NewSystem(WithInstances(1, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	spec := TemplateSpec{
		Name: "SCAN-ZCU9", Embedded: true, FreqMHz: 180, PowerW: 2.2,
		FF: 8, LUT: 10, DSP: 2, BRAM: 12,
		MACsPerCycle: 4, StreamBytesPerCycle: 96, II: 1, Depth: 12,
	}
	if err := s.RegisterTemplate(spec); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterTemplate(spec); err == nil {
		t.Error("duplicate template accepted")
	}
	bad := spec
	bad.Name = "BAD"
	bad.FreqMHz = 0
	if err := s.RegisterTemplate(bad); err == nil {
		t.Error("invalid template accepted")
	}
	acc, err := s.RegisterAcc("SCAN-ZCU9", NearStor)
	if err != nil {
		t.Fatalf("registering custom template: %v", err)
	}
	// Custom embedded template must not load on the on-chip Virtex part.
	if _, err := s.RegisterAcc("SCAN-ZCU9", OnChip); err == nil {
		t.Error("embedded template accepted on on-chip fabric")
	}
	out, err := s.CreateStream("out", NearStor, CPU, Collect, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.SetArg(0, out); err != nil {
		t.Fatal(err)
	}
	acc.SetWork(Work{Stage: "Scan", StreamBytes: 1e9, MACs: 1e6})
	if err := s.Deploy(); err != nil {
		t.Fatal(err)
	}
	j, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Execute(acc); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !j.Done() {
		t.Fatal("custom-template job incomplete")
	}
	// 1 GB at min(kernel 17.3 GB/s, SSD 12 GB/s) ≈ 83 ms.
	ms := j.Latency().Milliseconds()
	if ms < 70 || ms > 120 {
		t.Errorf("scan latency = %.1f ms, want ~85", ms)
	}
}

func TestRegisterAccAtSharing(t *testing.T) {
	// The on-chip-only baseline: three kernels time-multiplex one fabric.
	s, err := NewSystem(WithInstances(1, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	cnn, err := s.RegisterAccAt("CNN-VU9P", OnChip, 0)
	if err != nil {
		t.Fatal(err)
	}
	gemm, err := s.RegisterAccAt("GEMM-VU9P", OnChip, 0)
	if err != nil {
		t.Fatal(err)
	}
	knn, err := s.RegisterAccAt("KNN-VU9P", OnChip, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterAccAt("KNN-VU9P", OnChip, 3); err == nil {
		t.Error("out-of-range instance accepted")
	}
	cnn.SetWork(Work{Stage: "FE", MACs: 247.5e9, SPMResident: true, OutputBytes: 6144})
	gemm.SetWork(Work{Stage: "SL", MACs: 1.55e6, StreamBytes: 2.2e9, OutputBytes: 1024})
	knn.SetWork(Work{Stage: "RR", MACs: 614e6, StreamBytes: 2.46e9, FromStorage: true, Random: true})

	// Chain via same-level streams with explicit directions.
	feOut, _ := s.CreateStream("f", OnChip, OnChip, Pair, 6144, 1)
	slOut, _ := s.CreateStream("s", OnChip, OnChip, Pair, 1024, 1)
	must := func(e error) {
		t.Helper()
		if e != nil {
			t.Fatal(e)
		}
	}
	must(cnn.SetOutput(0, feOut))
	must(gemm.SetInput(0, feOut))
	must(gemm.SetOutput(1, slOut))
	must(knn.SetInput(0, slOut))

	must(s.Deploy())
	j, err := s.Begin()
	must(err)
	must(j.Execute(cnn))
	must(j.Execute(gemm))
	must(j.Execute(knn))
	must(j.Commit())
	s.Run()
	if !j.Done() {
		t.Fatal("shared-fabric job incomplete")
	}
	// Stages serialise on the single fabric: FE ~111 + SL ~100 + RR ~385.
	ms := j.Latency().Milliseconds()
	if ms < 500 || ms > 700 {
		t.Errorf("on-chip-only latency = %.1f ms, want ~595", ms)
	}
}

func TestFromStorageWork(t *testing.T) {
	// Identical work with and without FromStorage: the storage-resident
	// variant must take longer (host IO) and touch the SSDs.
	run := func(fromStorage bool) (float64, map[string]float64) {
		s, err := NewSystem(WithInstances(1, 0, 0))
		if err != nil {
			t.Fatal(err)
		}
		acc, err := s.RegisterAcc("KNN-VU9P", OnChip)
		if err != nil {
			t.Fatal(err)
		}
		acc.SetWork(Work{Stage: "RR", MACs: 1e6, StreamBytes: 1e9, FromStorage: fromStorage})
		if err := s.Deploy(); err != nil {
			t.Fatal(err)
		}
		j, _ := s.Begin()
		if err := j.Execute(acc); err != nil {
			t.Fatal(err)
		}
		if err := j.Commit(); err != nil {
			t.Fatal(err)
		}
		s.Run()
		return j.Latency().Seconds(), s.Energy()
	}
	dramSec, dramE := run(false)
	ssdSec, ssdE := run(true)
	if ssdSec <= dramSec {
		t.Errorf("storage-resident run (%v s) not slower than DRAM-resident (%v s)", ssdSec, dramSec)
	}
	if ssdE["SSD"] <= 0 {
		t.Error("FromStorage charged no SSD energy")
	}
	if dramE["SSD"] != 0 {
		t.Errorf("DRAM-resident run charged SSD energy %v", dramE["SSD"])
	}
}

func TestEnergyMapKeys(t *testing.T) {
	s, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	e := s.Energy()
	for _, k := range []string{"ACC", "Cache", "DRAM", "SSD", "MC and Interconnect", "PCIe"} {
		if _, ok := e[k]; !ok {
			t.Errorf("energy map missing %q", k)
		}
	}
	if s.TotalEnergy() != 0 {
		t.Error("fresh system has nonzero energy")
	}
	var names []string
	for k := range e {
		names = append(names, k)
	}
	if len(names) != 6 {
		t.Errorf("energy components = %v", strings.Join(names, ","))
	}
}

func TestJobPriority(t *testing.T) {
	// Two jobs contend for one near-storage instance; the second-submitted
	// job carries higher priority and must be dispatched first once both
	// are queued.
	s, err := NewSystem(WithInstances(0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	acc, err := s.RegisterAcc("KNN-ZCU9", NearStor)
	if err != nil {
		t.Fatal(err)
	}
	acc.SetWork(Work{Stage: "Scan", StreamBytes: 6e9}) // ~1s per job
	if err := s.Deploy(); err != nil {
		t.Fatal(err)
	}
	mk := func(prio int) *Job {
		j, err := s.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := j.SetPriority(prio); err != nil {
			t.Fatal(err)
		}
		if err := j.Execute(acc); err != nil {
			t.Fatal(err)
		}
		if err := j.Commit(); err != nil {
			t.Fatal(err)
		}
		return j
	}
	// Three jobs: the first occupies the device; among the two queued,
	// the high-priority one must finish before the earlier-submitted
	// low-priority one.
	first := mk(0)
	low := mk(0)
	high := mk(5)
	s.Run()
	if !first.Done() || !low.Done() || !high.Done() {
		t.Fatal("jobs incomplete")
	}
	if high.FinishedAt() >= low.FinishedAt() {
		t.Errorf("high-priority job finished at %v, after low-priority at %v",
			high.FinishedAt(), low.FinishedAt())
	}
	// SetPriority after Commit is rejected.
	if err := high.SetPriority(1); err == nil {
		t.Error("SetPriority after Commit accepted")
	}
}
