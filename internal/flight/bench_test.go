package flight

import (
	"testing"

	"repro/internal/qtrace"
	"repro/internal/sim"
)

// BenchmarkRecorderQueryDone is the enabled-path overhead gate: one
// completion through an armed recorder in steady state — retention copy,
// window eviction, the observability point and all three detector
// evaluations. The healthy stream below never triggers, so every
// iteration pays the full always-on cost. Compare against the cluster's
// per-query budget (~145 allocs, ~70µs modelled work): the recorder must
// stay a small fraction of it.
func BenchmarkRecorderQueryDone(b *testing.B) {
	r := New(Config{Detect: true, Objective: sim.Second})
	r.SetLoadProvider(func(dst []int) []int {
		return append(dst, 3, 2, 4, 3)
	})
	l := qtrace.NewLog(qtrace.Options{Observer: r})
	r.AttachLog(l)
	interval := 10 * sim.Millisecond
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := sim.Time(i) * interval
		l.Submitted(i, i%16, at)
		l.Completed(i, at+5*sim.Millisecond)
	}
	b.StopTimer()
	if r.Frozen() {
		b.Fatal("healthy stream must not trigger")
	}
}
