package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram not zeroed")
	}
	for i := 1; i <= 100; i++ {
		h.Add(Time(i) * Millisecond)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Min() != Millisecond || h.Max() != 100*Millisecond {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Mean(); got != Time(50.5*float64(Millisecond)) {
		t.Errorf("mean = %v, want 50.5ms", got)
	}
	if got := h.Quantile(0.5); got != 50*Millisecond {
		t.Errorf("p50 = %v, want 50ms", got)
	}
	if got := h.Quantile(0.99); got != 99*Millisecond {
		t.Errorf("p99 = %v, want 99ms", got)
	}
	if got := h.Quantile(1.0); got != 100*Millisecond {
		t.Errorf("p100 = %v, want max", got)
	}
	if got := h.Quantile(0); got != Millisecond {
		t.Errorf("p0 = %v, want min", got)
	}
	if h.String() == "" || h.String() == "histogram{empty}" {
		t.Error("summary wrong")
	}
}

func TestHistogramPanics(t *testing.T) {
	h := NewHistogram()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty quantile did not panic")
			}
		}()
		h.Quantile(0.5)
	}()
	h.Add(Second)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range quantile did not panic")
			}
		}()
		h.Quantile(1.5)
	}()
}

// Property: quantiles are monotone in q and bounded by min/max, for any
// sample set and insertion order.
func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8)%200 + 1
		h := NewHistogram()
		for i := 0; i < n; i++ {
			h.Add(Time(rng.Int63n(1_000_000)))
		}
		prev := h.Quantile(0)
		for q := 0.1; q <= 1.0; q += 0.1 {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return h.Quantile(0) >= h.Min() && h.Quantile(1) <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
