package cbir

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/workload"
)

func benchIndex(b *testing.B) (*Index, *kernels.Matrix) {
	b.Helper()
	ds := workload.Synthetic(workload.SyntheticParams{
		N: 1 << 14, D: 96, Clusters: 64, Spread: 0.08, Seed: 4,
	})
	ix, err := BuildIndex(ds.Vectors, 64, 15, 5)
	if err != nil {
		b.Fatal(err)
	}
	return ix, ds.Queries(16, 0.02, 6)
}

// BenchmarkIVFSearch measures the functional shortlist→rerank pipeline
// (queries per op = 16).
func BenchmarkIVFSearch(b *testing.B) {
	ix, queries := benchIndex(b)
	p := SearchParams{Probes: 8, Candidates: 1024, K: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(queries, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShortlistGeMM isolates the Eq. 1 batched distance kernel.
func BenchmarkShortlistGeMM(b *testing.B) {
	ix, queries := benchIndex(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Shortlist(queries, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBruteForce is the exhaustive-search baseline the paper argues
// is impractical at scale (here it is merely slow).
func BenchmarkBruteForce(b *testing.B) {
	ix, queries := benchIndex(b)
	q := queries.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.BruteForceKNN(ix.Vectors, q, 10)
	}
}

// BenchmarkKMeans measures the offline clustering step.
func BenchmarkKMeans(b *testing.B) {
	ds := workload.Synthetic(workload.SyntheticParams{
		N: 4096, D: 32, Clusters: 16, Spread: 0.08, Seed: 7,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(ds.Vectors, 16, 10, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPQEncode measures code generation throughput.
func BenchmarkPQEncode(b *testing.B) {
	ds := workload.Synthetic(workload.SyntheticParams{
		N: 2048, D: 96, Clusters: 16, Spread: 0.08, Seed: 9,
	})
	pq, err := TrainPQ(ds.Vectors, DefaultPQParams())
	if err != nil {
		b.Fatal(err)
	}
	v := ds.Vectors.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pq.Encode(v)
	}
}
