package accel

import (
	"fmt"

	"repro/internal/fpga"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/storage"
)

// OnChipAccel is the cache-coherent on-chip accelerator (paper §II-A,
// Fig. 2): a large Virtex-class fabric on the NoC with a 100 GB/s port to
// the shared cache, virtual-memory support (TLB + page-table walkers), and
// host DRAM behind the shared memory controllers.
type OnChipAccel struct {
	p    *Platform
	name string
	fab  *fpga.Fabric
	port *noc.Port
	llc  *noc.Port
}

// NewOnChip attaches a new on-chip accelerator instance to the platform.
func (p *Platform) NewOnChip() *OnChipAccel {
	name := p.id(OnChip)
	llc, _ := p.NoC.Port("llc")
	return &OnChipAccel{
		p:    p,
		name: name,
		fab:  fpga.NewFabric(p.Eng, name, fpga.VirtexVU9P),
		port: p.NoC.MustAddPort(name, p.Cfg.OnChip.NoCGBps*1e9),
		llc:  llc,
	}
}

// Name reports the instance name.
func (a *OnChipAccel) Name() string { return a.name }

// Level reports OnChip.
func (a *OnChipAccel) Level() Level { return OnChip }

// Fabric exposes the device fabric.
func (a *OnChipAccel) Fabric() *fpga.Fabric { return a.fab }

// BusyUntil reports when the device can accept the next task.
func (a *OnChipAccel) BusyUntil() sim.Time { return a.fab.BusyUntil() }

// Estimate returns the synthesis-report runtime estimate.
func (a *OnChipAccel) Estimate(t *Task) sim.Time { return estimate(t) }

// Execute runs one task. The streamed input is supplied over the path its
// Source implies; the kernel pipeline overlaps with the stream, so task
// latency is max(supply, compute) plus translation overhead.
func (a *OnChipAccel) Execute(t *Task) (sim.Time, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	if !a.fab.Idle() {
		return 0, fmt.Errorf("accel: %s busy until %v", a.name, a.fab.BusyUntil())
	}
	now := a.p.Eng.Now()
	meter := a.p.Meter
	cfg := a.p.Cfg

	supplyDone := now
	switch t.Source {
	case SourceSPM:
		// Parameters resident in on-fabric SRAM: no movement.
	case SourceHostDRAM:
		// DRAM → MC → LLC → NoC → accelerator. Streaming working sets far
		// beyond the LLC contend with their own evictions; the pollution
		// factor derates the effective channel efficiency (§IV-B).
		eff := cfg.Memory.StreamEfficieny * cfg.OnChip.CachePollutionFactor
		if t.Pattern == storage.RandomPages {
			eff = cfg.Memory.RandomEfficieny * cfg.OnChip.CachePollutionFactor
		}
		supplyDone = a.p.HostMem.Link().TransferEff(t.Bytes, eff)
		if nocDone := a.p.NoC.Transfer(a.llc, a.port, t.Bytes); nocDone > supplyDone {
			supplyDone = nocDone
		}
		meter.DRAMTraffic(t.Stage, t.Bytes)
		meter.MCTraffic(t.Stage, t.Bytes)
		meter.CacheTraffic(t.Stage, t.Bytes)
	case SourceSSD:
		// SSD → host PCIe → DRAM staging → cache → accelerator. The read
		// is striped across the array; every byte also crosses host DRAM
		// twice (staging write + read), and the accelerator's read of the
		// staged buffer cannot overlap the tail of the gather — on-chip
		// acceleration synchronises on staged-buffer completion at batch
		// granularity, unlike the near-data levels that consume in place.
		supplyDone = a.readStriped(t.Bytes, t.Pattern)
		eff := cfg.Memory.StreamEfficieny * cfg.OnChip.CachePollutionFactor
		if stg := a.p.HostMem.Link().TransferEff(t.Bytes, eff); stg > supplyDone {
			supplyDone = stg
		}
		readPass := sim.FromSeconds(float64(t.Bytes) / (a.p.HostMem.Link().BytesPerSec() * eff))
		if rd := a.p.HostMem.Link().TransferEff(t.Bytes, eff); rd > supplyDone+readPass {
			supplyDone = rd
		} else {
			supplyDone += readPass
		}
		if nocDone := a.p.NoC.Transfer(a.llc, a.port, t.Bytes); nocDone > supplyDone {
			supplyDone = nocDone
		}
		meter.SSDTraffic(t.Stage, t.Bytes)
		meter.PCIeTraffic(t.Stage, t.Bytes)
		meter.DRAMTraffic(t.Stage, 2*t.Bytes)
		meter.MCTraffic(t.Stage, 2*t.Bytes)
		meter.CacheTraffic(t.Stage, t.Bytes)
	default:
		return 0, fmt.Errorf("accel: %s cannot stream from %v", a.name, t.Source)
	}

	kernelDur := t.Kernel.Duration(t.MACs, t.Bytes)
	// Address-translation overhead: misses per page-ish granule.
	if cfg.OnChip.TLBMissRate > 0 && t.Bytes > 0 {
		accesses := float64(t.Bytes) / float64(cfg.CPU.L2LineBytes)
		missNS := accesses * cfg.OnChip.TLBMissRate * cfg.OnChip.TLBMissLatencyNS
		kernelDur += sim.FromSeconds(missNS * 1e-9)
	}

	done := now + kernelDur
	if supplyDone > done {
		done = supplyDone
	}
	a.fab.Occupy(done - now)
	meter.AddActive(t.Stage, t.Kernel.Power(false), done-now)

	if t.OutputBytes > 0 {
		a.p.NoC.Transfer(a.port, a.llc, t.OutputBytes)
		meter.CacheTraffic(t.Stage, t.OutputBytes)
	}
	return done, nil
}

// readStriped reads n bytes spread evenly across the SSD array through the
// host interface and returns the last completion.
func (a *OnChipAccel) readStriped(n int64, pattern storage.AccessPattern) sim.Time {
	count := a.p.Storage.Len()
	per := n / int64(count)
	var last sim.Time
	for i := 0; i < count; i++ {
		chunk := per
		if i == count-1 {
			chunk = n - per*int64(count-1)
		}
		if d := a.p.Storage.HostRead(i, chunk, pattern); d > last {
			last = d
		}
	}
	return last
}
