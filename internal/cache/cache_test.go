package cache

import (
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T) *Cache {
	t.Helper()
	c, err := New("llc", 2<<20, 16, 64) // Table II: 2MB shared L2
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadGeometry(t *testing.T) {
	cases := []struct {
		name     string
		capacity int64
		assoc    int
		line     int64
	}{
		{"zero capacity", 0, 16, 64},
		{"zero assoc", 1 << 20, 0, 64},
		{"non-pow2 line", 1 << 20, 16, 48},
		{"indivisible", 100, 16, 64},
		{"non-pow2 sets", 3 * 64 * 16, 16, 64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New("bad", tc.capacity, tc.assoc, tc.line); err == nil {
				t.Errorf("New(%d,%d,%d) accepted", tc.capacity, tc.assoc, tc.line)
			}
		})
	}
}

func TestMissThenHit(t *testing.T) {
	c := mustCache(t)
	r := c.Access(0x1000, false)
	if r.Hit {
		t.Error("cold access hit")
	}
	r = c.Access(0x1000, false)
	if !r.Hit {
		t.Error("second access missed")
	}
	r = c.Access(0x1020, false) // same 64B line
	if !r.Hit {
		t.Error("same-line access missed")
	}
	if c.HitRate() != 2.0/3.0 {
		t.Errorf("hit rate = %v, want 2/3", c.HitRate())
	}
}

func TestLRUEviction(t *testing.T) {
	c, err := New("tiny", 4*64, 4, 64) // one set, 4 ways
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		c.Access(i*64, false)
	}
	c.Access(0, false) // refresh line 0
	r := c.Access(4*64, false)
	if !r.Evicted {
		t.Fatal("no eviction when set full")
	}
	// Line 1 (now LRU) should be gone; line 0 should remain.
	if !c.Contains(0) {
		t.Error("MRU line evicted")
	}
	if c.Contains(64) {
		t.Error("LRU line survived")
	}
}

func TestWriteBackOnDirtyEviction(t *testing.T) {
	c, err := New("tiny", 2*64, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, true) // dirty
	c.Access(64, false)
	r := c.Access(128, false) // evicts line 0 (LRU, dirty)
	if !r.WriteBack {
		t.Fatal("dirty eviction produced no writeback")
	}
	if r.Victim != 0 {
		t.Errorf("victim addr = %#x, want 0", r.Victim)
	}
	st := c.Stats()
	if st.WriteBacks != 1 {
		t.Errorf("writebacks = %d, want 1", st.WriteBacks)
	}
}

func TestCleanEvictionNoWriteBack(t *testing.T) {
	c, err := New("tiny", 2*64, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, false)
	c.Access(64, false)
	r := c.Access(128, false)
	if !r.Evicted || r.WriteBack {
		t.Errorf("clean eviction: evicted=%v writeback=%v, want true/false", r.Evicted, r.WriteBack)
	}
}

func TestFlushRange(t *testing.T) {
	c := mustCache(t)
	for i := int64(0); i < 32; i++ {
		c.Access(i*64, i%2 == 0) // even lines dirty
	}
	wb := c.FlushRange(0, 32*64)
	if wb != 16 {
		t.Errorf("flushed %d dirty lines, want 16", wb)
	}
	for i := int64(0); i < 32; i++ {
		if c.Contains(i * 64) {
			t.Fatalf("line %d survived flush", i)
		}
	}
	// Flushing again is a no-op.
	if wb := c.FlushRange(0, 32*64); wb != 0 {
		t.Errorf("second flush wrote back %d, want 0", wb)
	}
}

func TestFlushRangePartial(t *testing.T) {
	c := mustCache(t)
	c.Access(0, true)
	c.Access(4096, true)
	wb := c.FlushRange(0, 64)
	if wb != 1 {
		t.Errorf("partial flush wrote back %d, want 1", wb)
	}
	if c.Contains(0) {
		t.Error("flushed line still present")
	}
	if !c.Contains(4096) {
		t.Error("unrelated line flushed")
	}
}

func TestFlushAll(t *testing.T) {
	c := mustCache(t)
	for i := int64(0); i < 100; i++ {
		c.Access(i*64, true)
	}
	if wb := c.FlushAll(); wb != 100 {
		t.Errorf("FlushAll wrote back %d, want 100", wb)
	}
}

func TestWorkingSetLargerThanCacheThrashes(t *testing.T) {
	c := mustCache(t)
	// Stream 8 MB (4× capacity) twice: second pass should still miss ~always
	// (LRU streaming pathology) — this is the on-chip shortlist-retrieval
	// behaviour from §IV-B (2.2 GB working set vs 2 MB LLC).
	lines := int64(8 << 20 / 64)
	for pass := 0; pass < 2; pass++ {
		for i := int64(0); i < lines; i++ {
			c.Access(i*64, false)
		}
	}
	if hr := c.HitRate(); hr > 0.01 {
		t.Errorf("hit rate = %v streaming 4x capacity, want ~0", hr)
	}
}

func TestWorkingSetFitsAllHitsAfterWarmup(t *testing.T) {
	c := mustCache(t)
	// 1 MB working set in a 2 MB cache: after warmup, all hits — the
	// feature-extraction parameter behaviour (11.3 MB compressed fits
	// on-chip SRAM in the paper; scaled here).
	lines := int64(1 << 20 / 64)
	for i := int64(0); i < lines; i++ {
		c.Access(i*64, false)
	}
	h0 := c.Stats().Hits
	for i := int64(0); i < lines; i++ {
		c.Access(i*64, false)
	}
	h1 := c.Stats().Hits
	if gained := h1 - h0; gained != uint64(lines) {
		t.Errorf("second pass hits = %d, want %d (all)", gained, lines)
	}
}

// Property: the cache never reports more hits+misses than accesses, never
// holds more valid lines than its capacity, and Contains agrees with a
// shadow model for a random trace.
func TestCacheAgainstShadowModel(t *testing.T) {
	f := func(trace []uint16) bool {
		c, err := New("prop", 64*64, 4, 64) // 64 lines, 16 sets × 4 ways
		if err != nil {
			return false
		}
		for _, a := range trace {
			addr := int64(a%1024) * 64
			c.Access(addr, a%3 == 0)
		}
		st := c.Stats()
		if st.Hits+st.Misses != st.Reads+st.Writes {
			return false
		}
		valid := 0
		for _, l := range c.data {
			if l.valid {
				valid++
			}
		}
		return valid <= 64 && st.WriteBacks <= st.Writes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
