package qtrace

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// DefaultAlpha is the sketch's relative-error bound when Options.Alpha is
// unset: 1% keeps p999 of a multi-second latency distribution within a few
// milliseconds of truth while the whole sketch stays under 12 KiB.
const DefaultAlpha = 0.01

// Sketch trackable range. Query latencies in this simulator span
// microseconds (an unloaded on-chip stage) to minutes (a saturated open
// loop); a nanosecond-to-an-hour-plus range covers both with margin.
const (
	sketchMin = sim.Nanosecond    // values at or below collapse into the zero bucket
	sketchMax = 4000 * sim.Second // values above land in the overflow bucket
)

// Sketch is a log-bucketed quantile histogram over simulated durations
// (the DDSketch construction): bucket i covers the value range
// (min·γ^(i-1), min·γ^i] with γ = (1+α)/(1−α), so every value in a bucket
// is within relative error α of the bucket's midpoint estimate
// 2·min·γ^i/(1+γ).
//
// Error bound: for samples in [1 ns, 4000 s], Quantile(q) is within
// relative error α of the exact nearest-rank q-quantile of the added
// samples, plus the ±1 ps quantization of rounding the estimate to the
// simulator's time grid (see TestSketchQuantileErrorBound). Samples ≤ 1 ns
// report as
// exactly their shared bucket's floor (0); samples > 4000 s saturate the
// overflow bucket and quantiles that land there report the range maximum —
// a lower bound, with no relative guarantee. Count, Sum, Min and Max stay
// exact for every sample.
//
// Add performs no heap allocations (the bucket array is sized at
// construction), so a sketch can sit on the query-completion path of a
// long sweep without disturbing the allocation profile.
type Sketch struct {
	alpha       float64
	gamma       float64
	invLogGamma float64

	counts   []uint64 // counts[i] covers (sketchMin·γ^(i-1), sketchMin·γ^i]
	zero     uint64   // samples ≤ sketchMin
	overflow uint64   // samples > sketchMax

	n   uint64
	sum float64 // picoseconds; float64 to survive >100-day totals
	min sim.Time
	max sim.Time
}

// NewSketch returns an empty sketch with relative-error bound alpha
// (<= 0 means DefaultAlpha). alpha must stay below 1.
func NewSketch(alpha float64) *Sketch {
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	if alpha >= 1 {
		panic(fmt.Sprintf("qtrace: sketch alpha %v out of (0,1)", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	span := math.Log(float64(sketchMax) / float64(sketchMin))
	buckets := int(math.Ceil(span/math.Log(gamma))) + 1
	return &Sketch{
		alpha:       alpha,
		gamma:       gamma,
		invLogGamma: 1 / math.Log(gamma),
		counts:      make([]uint64, buckets),
	}
}

// Alpha reports the configured relative-error bound.
func (s *Sketch) Alpha() float64 { return s.alpha }

// Add records one duration. Negative durations are clamped to zero (they
// indicate a model bug upstream, but a latency sketch is the wrong place
// to crash a long sweep).
func (s *Sketch) Add(t sim.Time) {
	if t < 0 {
		t = 0
	}
	if s.n == 0 || t < s.min {
		s.min = t
	}
	if t > s.max {
		s.max = t
	}
	s.n++
	s.sum += float64(t)
	switch {
	case t <= sketchMin:
		s.zero++
	case t > sketchMax:
		s.overflow++
	default:
		i := int(math.Ceil(math.Log(float64(t)/float64(sketchMin)) * s.invLogGamma))
		if i < 0 {
			i = 0
		}
		if i >= len(s.counts) {
			i = len(s.counts) - 1
		}
		s.counts[i]++
	}
}

// Count reports how many samples were added.
func (s *Sketch) Count() uint64 { return s.n }

// OverflowCount reports how many samples exceeded the trackable maximum.
func (s *Sketch) OverflowCount() uint64 { return s.overflow }

// Sum reports the exact total of the added samples.
func (s *Sketch) Sum() sim.Time { return sim.Time(s.sum) }

// Mean reports the exact arithmetic mean (zero on empty).
func (s *Sketch) Mean() sim.Time {
	if s.n == 0 {
		return 0
	}
	return sim.Time(s.sum / float64(s.n))
}

// Min reports the exact smallest sample (zero on empty).
func (s *Sketch) Min() sim.Time { return s.min }

// Max reports the exact largest sample (zero on empty).
func (s *Sketch) Max() sim.Time { return s.max }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) under the nearest-rank
// convention of sim.Histogram: the ⌈q·n⌉-th smallest sample (at least the
// first). Empty sketches report zero; out-of-range q panics. The estimate
// is within relative error Alpha of the exact ranked sample for samples in
// the trackable range (see the type comment for the edges).
func (s *Sketch) Quantile(q float64) sim.Time {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("qtrace: quantile %v out of [0,1]", q))
	}
	if s.n == 0 {
		return 0
	}
	// Rank of the target sample, 1-based, matching sim.Histogram's
	// idx = int(q*n)-1 clamped to [0, n-1].
	rank := uint64(q * float64(s.n))
	if rank < 1 {
		rank = 1
	}
	if rank > s.n {
		rank = s.n
	}
	cum := s.zero
	if cum >= rank {
		// The target sits among the sub-nanosecond samples: report their
		// bucket floor. Exact when every such sample is zero (the common
		// case: instantaneous completion).
		return 0
	}
	for i, c := range s.counts {
		cum += c
		if cum >= rank {
			// Midpoint of (min·γ^(i-1), min·γ^i]: 2·min·γ^i/(1+γ),
			// rounded to the picosecond grid.
			ub := float64(sketchMin) * math.Pow(s.gamma, float64(i))
			return sim.Time(2*ub/(1+s.gamma) + 0.5)
		}
	}
	// Target is in the overflow bucket: the trackable maximum is a lower
	// bound on the true value.
	return sketchMax
}
