package cnn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/kernels"
)

// Network is a runnable CNN: the functional counterpart of a Spec, holding
// real parameters and executing real convolutions. The functional layer of
// the simulator runs a reduced geometry (MiniVGG) so tests execute in
// milliseconds; the timing layer always charges full VGG16 op counts.
type Network struct {
	Spec          *Spec
	convParams    []*kernels.ConvParams // one per Conv layer, in order
	fcWeights     []*kernels.Matrix     // one per FC layer, in order
	fcBias        [][]float32
	inC, inH, inW int
}

// MiniVGG returns a reduced VGG-style network spec for functional runs:
// inputSize×inputSize×3 input, two conv blocks, one FC producing featDim
// outputs.
func MiniVGG(inputSize, featDim int) *Spec {
	if inputSize < 8 || inputSize%4 != 0 {
		panic(fmt.Sprintf("cnn: MiniVGG input size %d must be a multiple of 4, >= 8", inputSize))
	}
	s := &Spec{Name: fmt.Sprintf("MiniVGG-%d", inputSize)}
	s.Layers = append(s.Layers,
		LayerSpec{Name: "conv1_1", Kind: Conv, InH: inputSize, InW: inputSize, InC: 3, OutC: 8, KernelSize: 3},
		LayerSpec{Name: "pool1", Kind: Pool, InH: inputSize, InW: inputSize, InC: 8},
		LayerSpec{Name: "conv2_1", Kind: Conv, InH: inputSize / 2, InW: inputSize / 2, InC: 8, OutC: 16, KernelSize: 3},
		LayerSpec{Name: "pool2", Kind: Pool, InH: inputSize / 2, InW: inputSize / 2, InC: 16},
		LayerSpec{Name: "fc", Kind: FC, FCIn: 16 * (inputSize / 4) * (inputSize / 4), FCOut: featDim},
	)
	return s
}

// NewNetwork instantiates a runnable network from a spec with
// deterministically seeded parameters (scaled Gaussian init). The spec's
// first layer must be Conv; inH/inW are taken from it.
func NewNetwork(spec *Spec, seed int64) (*Network, error) {
	if len(spec.Layers) == 0 {
		return nil, fmt.Errorf("cnn: empty spec %s", spec.Name)
	}
	first := spec.Layers[0]
	if first.Kind != Conv {
		return nil, fmt.Errorf("cnn: spec %s must start with a Conv layer", spec.Name)
	}
	rng := rand.New(rand.NewSource(seed))
	n := &Network{Spec: spec, inC: first.InC, inH: first.InH, inW: first.InW}
	for _, l := range spec.Layers {
		switch l.Kind {
		case Conv:
			p := kernels.NewConvParams(l.OutC, l.InC, l.KernelSize)
			fanIn := float64(l.InC * l.KernelSize * l.KernelSize)
			std := float32(math.Sqrt(2 / fanIn))
			for i := range p.Weights {
				p.Weights[i] = float32(rng.NormFloat64()) * std
			}
			n.convParams = append(n.convParams, p)
		case FC:
			w := kernels.NewMatrix(l.FCOut, l.FCIn)
			std := float32(math.Sqrt(2 / float64(l.FCIn)))
			for i := range w.Data {
				w.Data[i] = float32(rng.NormFloat64()) * std
			}
			b := make([]float32, l.FCOut)
			n.fcWeights = append(n.fcWeights, w)
			n.fcBias = append(n.fcBias, b)
		}
	}
	return n, nil
}

// InputShape reports the expected input tensor shape.
func (n *Network) InputShape() (c, h, w int) { return n.inC, n.inH, n.inW }

// Forward runs the network on one image and returns the final layer's
// output vector. The input tensor shape must match the spec.
func (n *Network) Forward(img *kernels.Tensor3) ([]float32, error) {
	if img.C != n.inC || img.H != n.inH || img.W != n.inW {
		return nil, fmt.Errorf("cnn: input shape %dx%dx%d, spec %s wants %dx%dx%d",
			img.C, img.H, img.W, n.Spec.Name, n.inC, n.inH, n.inW)
	}
	act := img
	var flat []float32
	ci, fi := 0, 0
	for _, l := range n.Spec.Layers {
		switch l.Kind {
		case Conv:
			act = kernels.ReLU(kernels.Conv2D(act, n.convParams[ci]))
			ci++
		case Pool:
			act = kernels.MaxPool2x2(act)
		case FC:
			if flat == nil {
				flat = act.Data
			}
			if len(flat) != l.FCIn {
				return nil, fmt.Errorf("cnn: FC %s input %d elems, want %d", l.Name, len(flat), l.FCIn)
			}
			flat = kernels.FullyConnected(flat, n.fcWeights[fi], n.fcBias[fi])
			if fi < len(n.fcWeights)-1 {
				for i, v := range flat {
					if v < 0 {
						flat[i] = 0
					}
				}
			}
			fi++
		}
	}
	if flat == nil {
		flat = act.Data
	}
	return flat, nil
}

// FeatureExtractor bundles a network with a PCA compression to the
// retrieval dimensionality — the full feature-extraction pipeline of the
// case study (VGGNet features + PCA to D=96, §IV-A).
type FeatureExtractor struct {
	Net        *Network
	Mean       []float32
	Components *kernels.Matrix // D_out × D_raw
}

// NewFeatureExtractor builds an extractor producing featDim-dimensional
// descriptors with a deterministically seeded random projection standing in
// for the offline-fitted PCA basis.
func NewFeatureExtractor(net *Network, featDim int, seed int64) *FeatureExtractor {
	last := net.Spec.Layers[len(net.Spec.Layers)-1]
	rawDim := int(last.OutputElems())
	rng := rand.New(rand.NewSource(seed))
	comp := kernels.NewMatrix(featDim, rawDim)
	std := float32(1 / math.Sqrt(float64(rawDim)))
	for i := range comp.Data {
		comp.Data[i] = float32(rng.NormFloat64()) * std
	}
	return &FeatureExtractor{
		Net:        net,
		Mean:       make([]float32, rawDim),
		Components: comp,
	}
}

// Extract produces the L2-normalised feature vector of one image.
func (fe *FeatureExtractor) Extract(img *kernels.Tensor3) ([]float32, error) {
	raw, err := fe.Net.Forward(img)
	if err != nil {
		return nil, err
	}
	return kernels.L2Normalize(kernels.PCAProject(raw, fe.Mean, fe.Components)), nil
}

// Dim reports the descriptor dimensionality.
func (fe *FeatureExtractor) Dim() int { return fe.Components.Rows }
