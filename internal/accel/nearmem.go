package accel

import (
	"fmt"

	"repro/internal/fpga"
	"repro/internal/sim"
	"repro/internal/storage"
)

// NearMemAccel is one AIM module (paper §II-B, Fig. 3): an embedded Zynq
// fabric interposed between the memory network and one commodity DIMM,
// with a configuration filter for commands, a memory-access filter, and an
// AIMbus hop to sibling modules. While a kernel runs, the module owns its
// DIMM (closed-row handoff); the fixed HandoffOverhead models the control
// transfer and the precharge on handback.
type NearMemAccel struct {
	p    *Platform
	name string
	fab  *fpga.Fabric
	dimm int // index into p.NearDIMMs
	// HandoffOverhead is charged once per task for DIMM control transfer
	// (handoff command, closed-row precharge on handback, §II-B).
	HandoffOverhead sim.Time

	handoffs uint64
}

// NewNearMem attaches a new AIM module to near-memory DIMM i.
func (p *Platform) NewNearMem(i int) (*NearMemAccel, error) {
	if i < 0 || i >= len(p.NearDIMMs) {
		return nil, fmt.Errorf("accel: no near-memory DIMM %d (have %d)", i, len(p.NearDIMMs))
	}
	name := p.id(NearMemory)
	return &NearMemAccel{
		p:               p,
		name:            name,
		fab:             fpga.NewFabric(p.Eng, name, fpga.ZynqZCU9),
		dimm:            i,
		HandoffOverhead: 1 * sim.Microsecond,
	}, nil
}

// Name reports the instance name.
func (a *NearMemAccel) Name() string { return a.name }

// Level reports NearMemory.
func (a *NearMemAccel) Level() Level { return NearMemory }

// Fabric exposes the device fabric.
func (a *NearMemAccel) Fabric() *fpga.Fabric { return a.fab }

// DIMM reports the attached DIMM index.
func (a *NearMemAccel) DIMM() int { return a.dimm }

// BusyUntil reports when the device can accept the next task.
func (a *NearMemAccel) BusyUntil() sim.Time { return a.fab.BusyUntil() }

// Estimate returns the synthesis-report runtime estimate.
func (a *NearMemAccel) Estimate(t *Task) sim.Time { return estimate(t) }

// Handoffs reports how many DIMM control transfers this module performed.
func (a *NearMemAccel) Handoffs() uint64 { return a.handoffs }

// Execute runs one task on the AIM module.
func (a *NearMemAccel) Execute(t *Task) (sim.Time, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	if !a.fab.Idle() {
		return 0, fmt.Errorf("accel: %s busy until %v", a.name, a.fab.BusyUntil())
	}
	now := a.p.Eng.Now()
	meter := a.p.Meter
	dimm := a.p.NearDIMMs[a.dimm]

	supplyDone := now
	switch t.Source {
	case SourceSPM:
		// Parameters already in the module's scratchpad.
	case SourceLocalDIMM, SourceRemoteDIMM:
		local := t.Bytes
		var remote int64
		if t.Source == SourceRemoteDIMM || t.RemoteFraction > 0 {
			rf := t.RemoteFraction
			if t.Source == SourceRemoteDIMM && rf == 0 {
				rf = 1
			}
			remote = int64(float64(t.Bytes) * rf)
			local = t.Bytes - remote
		}
		if local > 0 {
			if t.Pattern == storage.RandomPages {
				supplyDone = dimm.Random(local)
			} else {
				supplyDone = dimm.Stream(local)
			}
			meter.DRAMTraffic(t.Stage, local)
		}
		if remote > 0 {
			// Remote bytes are read on their home DIMM and hop the
			// shared AIMbus; the home-DIMM read is accounted as DRAM
			// energy, the hop as interconnect energy. Bandwidth-wise the
			// AIMbus is the narrow shared resource.
			busDone := a.p.AIMBus.Transfer(remote)
			if busDone > supplyDone {
				supplyDone = busDone
			}
			meter.DRAMTraffic(t.Stage, remote)
			meter.AIMBusTraffic(t.Stage, remote)
		}
	case SourceHostDRAM:
		// GAM DMAs the data from host DIMMs over the memory network into
		// the module's DIMM; the kernel then reads it back: the attached
		// DIMM carries the traffic twice.
		hostDone := a.p.HostMem.Stream(t.Bytes)
		stageDone := dimm.Stream(2 * t.Bytes)
		supplyDone = maxT(hostDone, stageDone)
		meter.DRAMTraffic(t.Stage, 3*t.Bytes) // host read + DIMM write + DIMM read
		meter.MCTraffic(t.Stage, t.Bytes)
	case SourceSSD:
		// Rerank-style placement: data lives on SSD and must cross the
		// shared host PCIe interface before the module can consume it —
		// the bottleneck that flattens the Fig. 11 near-memory curve.
		supplyDone = a.readStriped(t.Bytes, t.Pattern)
		if stg := dimm.Stream(2 * t.Bytes); stg > supplyDone {
			supplyDone = stg
		}
		meter.SSDTraffic(t.Stage, t.Bytes)
		meter.PCIeTraffic(t.Stage, t.Bytes)
		meter.MCTraffic(t.Stage, t.Bytes)
		meter.DRAMTraffic(t.Stage, 2*t.Bytes)
	default:
		return 0, fmt.Errorf("accel: %s cannot stream from %v", a.name, t.Source)
	}

	kernelDur := t.Kernel.Duration(t.MACs, t.Bytes)
	done := now + kernelDur + a.HandoffOverhead
	if supplyDone > done {
		done = supplyDone
	}
	a.handoffs++
	a.fab.Occupy(done - now)
	meter.AddActive(t.Stage, t.Kernel.Power(false), done-now)

	if t.OutputBytes > 0 {
		a.p.NearDIMMs[a.dimm].Stream(t.OutputBytes)
		meter.DRAMTraffic(t.Stage, t.OutputBytes)
	}
	return done, nil
}

func (a *NearMemAccel) readStriped(n int64, pattern storage.AccessPattern) sim.Time {
	count := a.p.Storage.Len()
	per := n / int64(count)
	var last sim.Time
	for i := 0; i < count; i++ {
		chunk := per
		if i == count-1 {
			chunk = n - per*int64(count-1)
		}
		if d := a.p.Storage.HostRead(i, chunk, pattern); d > last {
			last = d
		}
	}
	return last
}

func maxT(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
