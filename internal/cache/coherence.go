package cache

import (
	"fmt"
)

// This file models the cache-coherent interface between the host cores and
// the on-chip accelerator (paper §II-A: the NoC "provides a cache-coherent
// interface between all elements and main memory", with the address-
// translation support of [14]). A directory tracks, per line, which agents
// hold it and in what state (MSI protocol — Modified/Shared/Invalid);
// reads and writes return the coherence actions they caused, which the
// timing layer can convert into NoC messages and the energy layer into
// cache traffic.

// CoherenceState is a line's directory state.
type CoherenceState int

const (
	// Invalid: no cached copies.
	Invalid CoherenceState = iota
	// Shared: one or more clean copies.
	Shared
	// Modified: exactly one dirty copy.
	Modified
)

func (s CoherenceState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("CoherenceState(%d)", int(s))
	}
}

// CoherenceAction summarises what one access caused.
type CoherenceAction struct {
	// Invalidations is how many remote copies were invalidated.
	Invalidations int
	// WriteBack reports whether a remote dirty copy had to be written
	// back before this access could proceed.
	WriteBack bool
	// Fetch reports whether the line had to come from memory (no cached
	// copy, or only after a write-back).
	Fetch bool
}

type dirEntry struct {
	state   CoherenceState
	sharers uint64 // bitmask over agents
	owner   int    // valid when Modified
}

// Directory is an MSI coherence directory over a set of agents (agent 0 is
// conventionally the CPU cores, agent 1 the on-chip accelerator).
type Directory struct {
	agents   int
	lineSize int64
	lines    map[int64]*dirEntry

	// stats
	reads, writes   uint64
	invalidations   uint64
	writeBacks      uint64
	fetches         uint64
	upgradeMisses   uint64 // S→M transitions
	cleanDowngrades uint64 // M→S on remote read
}

// NewDirectory creates a directory for `agents` coherent agents.
func NewDirectory(agents int, lineSize int64) (*Directory, error) {
	if agents <= 0 || agents > 64 {
		return nil, fmt.Errorf("cache: directory supports 1..64 agents, got %d", agents)
	}
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("cache: line size %d not a positive power of two", lineSize)
	}
	return &Directory{agents: agents, lineSize: lineSize, lines: make(map[int64]*dirEntry)}, nil
}

func (d *Directory) entry(addr int64) *dirEntry {
	key := addr / d.lineSize
	e, ok := d.lines[key]
	if !ok {
		e = &dirEntry{state: Invalid}
		d.lines[key] = e
	}
	return e
}

func (d *Directory) checkAgent(agent int) {
	if agent < 0 || agent >= d.agents {
		panic(fmt.Sprintf("cache: agent %d out of range [0,%d)", agent, d.agents))
	}
}

// Read performs a coherent read by `agent`.
func (d *Directory) Read(agent int, addr int64) CoherenceAction {
	d.checkAgent(agent)
	d.reads++
	e := d.entry(addr)
	var act CoherenceAction
	switch e.state {
	case Invalid:
		act.Fetch = true
		d.fetches++
		e.state = Shared
		e.sharers = 1 << agent
	case Shared:
		if e.sharers&(1<<agent) == 0 {
			act.Fetch = true
			d.fetches++
			e.sharers |= 1 << agent
		}
	case Modified:
		if e.owner == agent {
			return act // local hit in M
		}
		// Remote dirty copy: write back, downgrade to Shared.
		act.WriteBack = true
		act.Fetch = true
		d.writeBacks++
		d.fetches++
		d.cleanDowngrades++
		e.state = Shared
		e.sharers = (1 << e.owner) | (1 << agent)
	}
	return act
}

// Write performs a coherent write by `agent` (read-for-ownership).
func (d *Directory) Write(agent int, addr int64) CoherenceAction {
	d.checkAgent(agent)
	d.writes++
	e := d.entry(addr)
	var act CoherenceAction
	switch e.state {
	case Invalid:
		act.Fetch = true
		d.fetches++
	case Shared:
		// Invalidate every other sharer.
		for a := 0; a < d.agents; a++ {
			if a != agent && e.sharers&(1<<a) != 0 {
				act.Invalidations++
			}
		}
		d.invalidations += uint64(act.Invalidations)
		if e.sharers&(1<<agent) == 0 {
			act.Fetch = true
			d.fetches++
		} else {
			d.upgradeMisses++
		}
	case Modified:
		if e.owner == agent {
			return act // already owned
		}
		act.WriteBack = true
		act.Fetch = true
		act.Invalidations = 1
		d.writeBacks++
		d.fetches++
		d.invalidations++
	}
	e.state = Modified
	e.owner = agent
	e.sharers = 1 << agent
	return act
}

// Evict removes agent's copy (capacity eviction); a Modified copy reports
// a write-back.
func (d *Directory) Evict(agent int, addr int64) (writeBack bool) {
	d.checkAgent(agent)
	e := d.entry(addr)
	switch e.state {
	case Modified:
		if e.owner != agent {
			return false
		}
		d.writeBacks++
		e.state = Invalid
		e.sharers = 0
		return true
	case Shared:
		e.sharers &^= 1 << agent
		if e.sharers == 0 {
			e.state = Invalid
		}
	}
	return false
}

// State reports a line's directory state.
func (d *Directory) State(addr int64) CoherenceState {
	key := addr / d.lineSize
	if e, ok := d.lines[key]; ok {
		return e.state
	}
	return Invalid
}

// Sharers reports how many agents hold the line.
func (d *Directory) Sharers(addr int64) int {
	key := addr / d.lineSize
	e, ok := d.lines[key]
	if !ok {
		return 0
	}
	n := 0
	for a := 0; a < d.agents; a++ {
		if e.sharers&(1<<a) != 0 {
			n++
		}
	}
	return n
}

// DirectoryStats is a counters snapshot.
type DirectoryStats struct {
	Reads, Writes   uint64
	Invalidations   uint64
	WriteBacks      uint64
	Fetches         uint64
	UpgradeMisses   uint64
	CleanDowngrades uint64
}

// Stats returns the counters.
func (d *Directory) Stats() DirectoryStats {
	return DirectoryStats{
		Reads: d.reads, Writes: d.writes,
		Invalidations: d.invalidations, WriteBacks: d.writeBacks,
		Fetches: d.fetches, UpgradeMisses: d.upgradeMisses,
		CleanDowngrades: d.cleanDowngrades,
	}
}
