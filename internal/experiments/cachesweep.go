package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/qtrace"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// CachePoint is one (cache entries, TTL, Zipf skew, offered rate) cell of
// the cache sweep: tail latency over the completed queries plus the cache
// accounting that explains it — hit rate, coalesced scatters, expirations
// and the freshness actually served.
type CachePoint struct {
	Entries    int
	TTLMS      float64
	Skew       float64
	OfferedQPS float64
	Completed  uint64

	Mean sim.Time
	P50  sim.Time
	P99  sim.Time

	// Cache is the run's cache accounting (zero when Entries == 0).
	Cache cluster.CacheStats
	// PeakPending is the singleflight table's high-water mark.
	PeakPending int
	// MeanBusyPct is the backend's mean accelerator utilisation in percent
	// — the cache's pressure relief shows up here as well as in the tail.
	MeanBusyPct float64
}

// CacheSweepResult is the full sweep, points in (entries, ttl, skew, rate)
// declaration order.
type CacheSweepResult struct {
	Points []*CachePoint
}

// Point finds a swept cell (nil if absent). A cache-off cell matches any
// ttl — the TTL is meaningless without entries.
func (r *CacheSweepResult) Point(entries int, ttlMS, skew, qps float64) *CachePoint {
	for _, p := range r.Points {
		if p.Entries != entries || p.Skew != skew || p.OfferedQPS != qps {
			continue
		}
		if entries == 0 || p.TTLMS == ttlMS {
			return p
		}
	}
	return nil
}

// Sweep defaults: a cache-off baseline against capacities below and near
// the 64-content working set, one TTL short enough to expire under the
// sweep's inter-arrival gaps and one effectively permanent, a moderate and
// a heavy Zipf skew, and rates up to the hot-replica saturation region the
// cluster sweep mapped.
const (
	DefaultCacheQueries = 48
	DefaultCacheSeed    = 1
)

// DefaultCacheEntries sweeps capacity (0 = cache off).
func DefaultCacheEntries() []int { return []int{0, 8, 32} }

// DefaultCacheTTLsMS sweeps the freshness window.
func DefaultCacheTTLsMS() []float64 { return []float64{250, 2500} }

// DefaultCacheSkews sweeps Zipf popularity concentration.
func DefaultCacheSkews() []float64 { return []float64{0.7, 1.2} }

// DefaultCacheRates sweeps offered load.
func DefaultCacheRates() []float64 { return []float64{10, 20} }

// cacheCell is one unit of sweep work.
type cacheCell struct {
	entries int
	ttlMS   float64
	skew    float64
	rate    float64
	stream  int64
}

// CacheSweep sweeps front-end cache capacity × TTL × Zipf skew × offered
// QPS over the deployment described by cfg (whose CacheEntries, CacheTTLMS
// and SkewExponent are overridden per cell). Cache-off cells run once per
// (skew, rate) — TTL is meaningless without entries. Arrivals are open-loop
// Poisson from a per-cell stream seeded by seed, precomputed so results are
// byte-identical at any worker count.
func CacheSweep(m workload.Model, cfg config.ClusterConfig, entries []int, ttlsMS, skews, rates []float64, queries int, seed int64, opts ...Option) (*CacheSweepResult, error) {
	if queries <= 0 {
		return nil, fmt.Errorf("experiments: cache sweep needs at least one query, got %d", queries)
	}
	var cells []cacheCell
	for _, e := range entries {
		ttls := ttlsMS
		if e == 0 {
			ttls = ttlsMS[:1] // off cells: one baseline per (skew, rate)
		}
		for _, ttl := range ttls {
			for _, skew := range skews {
				for _, rate := range rates {
					cells = append(cells, cacheCell{e, ttl, skew, rate, int64(len(cells))})
				}
			}
		}
	}
	o := buildOptions(opts)
	name := func(i int) string {
		c := cells[i]
		if c.entries == 0 {
			return fmt.Sprintf("cachesweep off s%.1f %.0f q/s", c.skew, c.rate)
		}
		return fmt.Sprintf("cachesweep %de %.0fms s%.1f %.0f q/s", c.entries, c.ttlMS, c.skew, c.rate)
	}
	arr := ArrivalSpec{Process: ArrivalPoisson, Seed: seed}
	points, err := mapRuns(o, cells, name, func(cell cacheCell) (*CachePoint, error) {
		ccfg := cfg
		ccfg.CacheEntries = cell.entries
		ccfg.CacheTTLMS = cell.ttlMS
		ccfg.SkewExponent = cell.skew
		if o.clusterPJ >= 0 {
			ccfg.ParallelDomains = o.clusterPJ
		}
		cl, err := cluster.New(ccfg, m, qtrace.Options{DropTimelines: true})
		if err != nil {
			return nil, err
		}
		at := arr.schedule(cell.rate, queries, cell.stream)
		for q := 0; q < queries; q++ {
			cl.SubmitAt(at(q))
		}
		if err := cl.Run(); err != nil {
			return nil, err
		}
		sk := cl.QLog().Sketch()
		p := &CachePoint{
			Entries:     cell.entries,
			TTLMS:       cell.ttlMS,
			Skew:        cell.skew,
			OfferedQPS:  cell.rate,
			Completed:   sk.Count(),
			Mean:        sk.Mean(),
			P50:         sk.Quantile(0.5),
			P99:         sk.Quantile(0.99),
			Cache:       cl.CacheStats(),
			PeakPending: cl.PeakPending(),
			MeanBusyPct: cl.MeanBusyPct(),
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	return &CacheSweepResult{Points: points}, nil
}

// DefaultCacheSweep runs the standard sweep over the default deployment.
func DefaultCacheSweep(m workload.Model, opts ...Option) (*CacheSweepResult, error) {
	return CacheSweep(m, config.DefaultCluster(),
		DefaultCacheEntries(), DefaultCacheTTLsMS(), DefaultCacheSkews(), DefaultCacheRates(),
		DefaultCacheQueries, DefaultCacheSeed, opts...)
}

// CacheSweepTable renders the sweep: capacity/TTL on the left, tail latency
// and the cache accounting on the right.
func CacheSweepTable(res *CacheSweepResult) *report.Table {
	t := &report.Table{
		Title: "Front-end result cache — capacity × TTL × Zipf skew × load",
		Columns: []string{"Entries", "TTL ms", "Skew", "Offered q/s",
			"p50 ms", "p99 ms", "hit %", "coalesced", "expired", "serve age ms"},
	}
	for _, p := range res.Points {
		entries, ttl := fmt.Sprintf("%d", p.Entries), report.F(p.TTLMS, 0)
		if p.Entries == 0 {
			entries, ttl = "off", "-"
		}
		t.AddRow(
			entries,
			ttl,
			report.F(p.Skew, 1),
			report.F(p.OfferedQPS, 0),
			report.F(p.P50.Milliseconds(), 1),
			report.F(p.P99.Milliseconds(), 1),
			report.F(100*p.Cache.HitRate, 1),
			fmt.Sprintf("%d", p.Cache.Coalesced),
			fmt.Sprintf("%d", p.Cache.Expired),
			report.F(p.Cache.MeanServeAge.Milliseconds(), 2),
		)
	}
	// Headline: the cache's tail relief at the heaviest (skew, rate) corner.
	var maxSkew, maxRate float64
	for _, p := range res.Points {
		if p.Skew > maxSkew {
			maxSkew = p.Skew
		}
		if p.OfferedQPS > maxRate {
			maxRate = p.OfferedQPS
		}
	}
	off := res.Point(0, 0, maxSkew, maxRate)
	var best *CachePoint
	for _, p := range res.Points {
		if p.Entries == 0 || p.Skew != maxSkew || p.OfferedQPS != maxRate {
			continue
		}
		if best == nil || p.P99 < best.P99 {
			best = p
		}
	}
	if off != nil && best != nil && best.P99 > 0 {
		t.AddNote("at skew %.1f, %.0f q/s: cache-off p99 %.1f ms vs %d entries/%.0f ms TTL p99 %.1f ms (%.2fx), hit rate %.0f%%",
			maxSkew, maxRate, off.P99.Milliseconds(), best.Entries, best.TTLMS,
			best.P99.Milliseconds(), float64(off.P99)/float64(best.P99), 100*best.Cache.HitRate)
	}
	return t
}
