package main

import (
	"crypto/sha256"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/workload"
)

// statsDigest runs the reference ReACH pipeline (the -stats path) and
// hashes the full statistics output: the sorted snapshot (which sources
// every shared-resource counter from the central registry) plus the
// rendered resource table.
func statsDigest(t *testing.T) ([32]byte, string) {
	t.Helper()
	run, err := experiments.RunPipeline(workload.DefaultModel(), experiments.ReACHMapping(), 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run.Sys.WriteSnapshot(&sb); err != nil {
		t.Fatal(err)
	}
	if err := report.ResourceTable(run.Sys.Engine().Stats()).Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256([]byte(sb.String())), sb.String()
}

// renderFig12 renders the Fig. 12 tables with the given worker count.
func renderFig12(t *testing.T, workers int) string {
	t.Helper()
	r, err := experiments.Fig12(workload.DefaultModel(), experiments.WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.Table().Render(&sb); err != nil {
		t.Fatal(err)
	}
	if err := r.Table().CSV(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestFig12WorkerCountInvariant is the parallelism half of the determinism
// contract: every run owns its own system and event engine, so the figure
// must come out byte-identical whether its runs execute serially (-j 1) or
// eight at a time (-j 8).
func TestFig12WorkerCountInvariant(t *testing.T) {
	serial := renderFig12(t, 1)
	parallel := renderFig12(t, 8)
	if serial != parallel {
		l1, l2 := strings.Split(serial, "\n"), strings.Split(parallel, "\n")
		for i := 0; i < len(l1) && i < len(l2); i++ {
			if l1[i] != l2[i] {
				t.Fatalf("fig12 diverged between -j 1 and -j 8 at line %d:\n  -j 1: %s\n  -j 8: %s", i+1, l1[i], l2[i])
			}
		}
		t.Fatalf("fig12 output diverged in length: %d vs %d bytes", len(serial), len(parallel))
	}
}

// The simulator must be bit-deterministic: two runs with an identical
// configuration produce byte-identical statistics. This is the regression
// guard for the engine's FIFO tie-breaking, the sorted registry walk and
// the deterministic histogram decimation — any map-iteration or
// wall-clock dependency sneaking into the model shows up here.
func TestStatsDeterministic(t *testing.T) {
	d1, out1 := statsDigest(t)
	d2, out2 := statsDigest(t)
	if d1 != d2 {
		// Find the first differing line for a useful failure message.
		l1, l2 := strings.Split(out1, "\n"), strings.Split(out2, "\n")
		for i := 0; i < len(l1) && i < len(l2); i++ {
			if l1[i] != l2[i] {
				t.Fatalf("stats diverged at line %d:\n  run1: %s\n  run2: %s", i+1, l1[i], l2[i])
			}
		}
		t.Fatalf("stats diverged in length: %d vs %d bytes", len(out1), len(out2))
	}
	if !strings.Contains(out1, "mem.aimbus") || !strings.Contains(out1, "ssd.host_link") {
		t.Error("stats output missing expected registry resources")
	}
}
