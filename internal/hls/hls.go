// Package hls estimates the synthesis outcomes of accelerator kernels from
// a high-level loop-nest description — the role the paper's tool flow
// fills with Vivado HLS reports and the authors' fast performance
// modelling work [13]. Given a kernel's loop nest (trip counts, per-
// iteration operations, unroll and array-partition factors) and a target
// device, it derives:
//
//   - the pipeline initiation interval (II), limited by memory-port
//     conflicts on partitioned arrays;
//   - the pipeline depth (operation-chain latency);
//   - resource usage (DSP/LUT/FF/BRAM) and the utilisation percentages;
//   - an achievable clock frequency (derated as the device fills);
//   - the resulting fpga.Template, ready to register with the ReACH
//     runtime.
//
// The estimator is deliberately first-order — the same fidelity class the
// paper's simulator consumes (II, depth, iteration counts, frequency).
package hls

import (
	"fmt"
	"math"

	"repro/internal/fpga"
)

// OpCounts describes one pipeline iteration's operation mix.
type OpCounts struct {
	// MACs per iteration (mapped to DSPs).
	MACs int
	// ALUOps per iteration (compares, adds mapped to LUT fabric).
	ALUOps int
	// MemReads/MemWrites per iteration against on-fabric buffers.
	MemReads  int
	MemWrites int
}

// Loop is one level of the kernel's loop nest, outermost first.
type Loop struct {
	Name string
	// Trip is the iteration count.
	Trip int
	// Unroll is the spatial unroll factor (1 = fully sequential).
	Unroll int
}

// Buffer is an on-fabric array the kernel iterates over.
type Buffer struct {
	Name string
	// Bytes of capacity required.
	Bytes int64
	// Partitions is the array-partitioning factor (ports scale with it).
	Partitions int
	// AccessesPerIter is how many reads+writes each pipeline iteration
	// makes to this buffer.
	AccessesPerIter int
}

// Kernel is the high-level kernel description.
type Kernel struct {
	Name    string
	Class   fpga.KernelClass
	Loops   []Loop
	Ops     OpCounts
	Buffers []Buffer
	// StreamBytesPerIter is the off-fabric data consumed per iteration.
	StreamBytesPerIter int
	// TargetMHz is the requested clock; the estimate may derate it.
	TargetMHz float64
}

// Estimate is the synthesis-report equivalent.
type Estimate struct {
	Kernel  string
	Device  *fpga.Device
	II      int
	Depth   int
	FreqMHz float64
	// TotalIterations is the product of trip counts divided by unrolls.
	TotalIterations float64
	// StreamBytesPerCycle is the unrolled off-fabric consumption rate.
	StreamBytesPerCycle float64
	// Resources used, absolute and as device utilisation.
	Used fpga.Resources
	Util fpga.Utilization
	// Fits reports whether the kernel fits the device.
	Fits bool
}

// Per-operation resource factors (first-order HLS costs for fp32
// datapaths).
const (
	dspPerMAC   = 3 // fp32 multiply-add on UltraScale+ DSP48E2 cascades
	lutPerMAC   = 120
	ffPerMAC    = 250
	lutPerALU   = 60
	ffPerALU    = 90
	bramBytes   = 4608 // one 36Kb BRAM holds 4.5 KiB
	lutBase     = 5000 // control, AXI plumbing
	ffBase      = 8000
	depthBase   = 8 // interface + control stages
	depthPerMAC = 4 // multiplier + adder chain stages
)

// Analyze produces the estimate of k on device d.
func Analyze(k Kernel, d *fpga.Device) (*Estimate, error) {
	if len(k.Loops) == 0 {
		return nil, fmt.Errorf("hls: kernel %s has no loops", k.Name)
	}
	if k.TargetMHz <= 0 {
		return nil, fmt.Errorf("hls: kernel %s needs a target frequency", k.Name)
	}
	unroll := 1
	iters := 1.0
	for _, l := range k.Loops {
		if l.Trip <= 0 {
			return nil, fmt.Errorf("hls: loop %s has trip %d", l.Name, l.Trip)
		}
		u := l.Unroll
		if u <= 0 {
			u = 1
		}
		if u > l.Trip {
			u = l.Trip
		}
		unroll *= u
		iters *= math.Ceil(float64(l.Trip) / float64(u))
	}

	// II: each iteration issues Ops×unroll memory accesses against the
	// partitioned buffers; the binding port count limits issue rate.
	ii := 1
	for _, b := range k.Buffers {
		if b.AccessesPerIter <= 0 {
			continue
		}
		parts := b.Partitions
		if parts <= 0 {
			parts = 1
		}
		// Dual-ported BRAM: 2 accesses per partition per cycle.
		need := b.AccessesPerIter * unroll
		have := parts * 2
		if q := (need + have - 1) / have; q > ii {
			ii = q
		}
	}

	// Depth: operation-chain latency.
	depth := depthBase + depthPerMAC*intLog2(unroll+1)
	if k.Ops.MACs > 0 {
		depth += depthPerMAC
	}

	// Resources: spatial ops scale with unroll.
	used := fpga.Resources{
		DSP: k.Ops.MACs * unroll * dspPerMAC,
		LUT: lutBase + k.Ops.MACs*unroll*lutPerMAC + k.Ops.ALUOps*unroll*lutPerALU,
		FF:  ffBase + k.Ops.MACs*unroll*ffPerMAC + k.Ops.ALUOps*unroll*ffPerALU,
	}
	var bufBytes int64
	for _, b := range k.Buffers {
		parts := b.Partitions
		if parts <= 0 {
			parts = 1
		}
		// Partitioning rounds each fragment up to whole BRAMs.
		perPart := (b.Bytes + int64(parts) - 1) / int64(parts)
		brams := int64(parts) * ((perPart + bramBytes - 1) / bramBytes)
		used.BRAM += int(brams)
		bufBytes += b.Bytes
	}

	util := fpga.Utilization{
		FF:   pct(used.FF, d.Total.FF),
		LUT:  pct(used.LUT, d.Total.LUT),
		DSP:  pct(used.DSP, d.Total.DSP),
		BRAM: pct(used.BRAM, d.Total.BRAM),
	}

	// Frequency: derate as the device fills (routing congestion).
	maxUtil := math.Max(math.Max(util.FF, util.LUT), math.Max(util.DSP, util.BRAM))
	freq := k.TargetMHz
	switch {
	case maxUtil > 90:
		freq *= 0.6
	case maxUtil > 75:
		freq *= 0.75
	case maxUtil > 50:
		freq *= 0.9
	}

	return &Estimate{
		Kernel:              k.Name,
		Device:              d,
		II:                  ii,
		Depth:               depth,
		FreqMHz:             freq,
		TotalIterations:     iters,
		StreamBytesPerCycle: float64(k.StreamBytesPerIter*unroll) / float64(ii),
		Used:                used,
		Util:                util,
		Fits:                util.Fits(),
	}, nil
}

// Template converts the estimate into a registrable accelerator template.
// activePowerW should come from a power model or measurement; the
// performance columns come from the estimate.
func (e *Estimate) Template(name string, activePowerW float64) (*fpga.Template, error) {
	if !e.Fits {
		return nil, fmt.Errorf("hls: kernel %s does not fit %s", e.Kernel, e.Device.Name)
	}
	t := &fpga.Template{
		Name:                name,
		Device:              e.Device,
		Util:                e.Util,
		FreqMHz:             e.FreqMHz,
		PowerW:              activePowerW,
		PowerNSW:            activePowerW,
		MACsPerCycle:        float64(e.Used.DSP) / dspPerMAC / float64(e.II),
		StreamBytesPerCycle: e.StreamBytesPerCycle,
		II:                  e.II,
		Depth:               e.Depth,
	}
	if t.MACsPerCycle <= 0 {
		t.MACsPerCycle = 1
	}
	return t, t.Validate()
}

func pct(used, total int) float64 {
	if total == 0 {
		return 100
	}
	return float64(used) / float64(total) * 100
}

func intLog2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
