package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/accel"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ArrivalProcess selects how a sweep's open-loop arrivals are spaced.
type ArrivalProcess int

const (
	// ArrivalFixed submits job id at id/rate — evenly spaced arrivals, the
	// default and the golden path every pinned output was produced with.
	ArrivalFixed ArrivalProcess = iota
	// ArrivalPoisson draws i.i.d. exponential inter-arrival gaps with mean
	// 1/rate from a seeded source — a memoryless open loop whose burstiness
	// exposes tail latency the way production traffic does.
	ArrivalPoisson
	// ArrivalFlash is a flash crowd: Poisson arrivals at the baseline rate,
	// except a middle stretch of the query sequence arrives BurstFactor×
	// faster — baseline → burst → baseline. The gaps are precomputed from
	// the same seeded source as ArrivalPoisson, so the anomaly is exactly
	// reproducible: the deterministic trigger the flight recorder's
	// detectors are validated against.
	ArrivalFlash
)

// ArrivalSpec is a sweep's arrival-process configuration. The zero value is
// the fixed-interval golden path.
type ArrivalSpec struct {
	Process ArrivalProcess
	// Seed seeds the Poisson gap sequence. Each rate in a sweep derives its
	// own stream from Seed and the rate's index, so every run is
	// reproducible and independent of worker scheduling.
	Seed int64
	// BurstFactor multiplies the baseline rate during the burst phase of
	// ArrivalFlash; values <= 1 fall back to the default of 8. Ignored by
	// the other processes.
	BurstFactor float64
	// BurstStart and BurstEnd bound the burst phase as fractions of the
	// query sequence (arrival index, not wall time). When both are zero the
	// burst covers the middle third, [1/3, 2/3).
	BurstStart, BurstEnd float64
}

// flashShape resolves the ArrivalFlash defaults.
func (a ArrivalSpec) flashShape() (factor, start, end float64) {
	factor, start, end = a.BurstFactor, a.BurstStart, a.BurstEnd
	if factor <= 1 {
		factor = 8
	}
	if start == 0 && end == 0 {
		start, end = 1.0/3, 2.0/3
	}
	return factor, start, end
}

// schedule builds job id → submission time for one rate. Poisson arrival
// times are precomputed sequentially here, in the spec builder, so the
// resulting SubmitAt closure is a pure table lookup and sweep results stay
// byte-identical at any -j.
func (a ArrivalSpec) schedule(rate float64, batches int, stream int64) func(id int) sim.Time {
	if a.Process == ArrivalFixed {
		interval := sim.FromSeconds(1 / rate)
		return func(id int) sim.Time { return sim.Time(id) * interval }
	}
	rng := rand.New(rand.NewSource(a.Seed ^ stream*0x5851f42d4c957f2d))
	times := make([]sim.Time, batches)
	at := 0.0
	factor, start, end := a.flashShape()
	for i := range times {
		r := rate
		if a.Process == ArrivalFlash {
			if frac := float64(i) / float64(batches); frac >= start && frac < end {
				r = rate * factor
			}
		}
		at += rng.ExpFloat64() / r
		times[i] = sim.FromSeconds(at)
	}
	return func(id int) sim.Time { return times[id] }
}

// LoadPoint is one offered-load measurement.
type LoadPoint struct {
	OfferedBatchesPerSec float64
	MeanLatency          sim.Time
	P99Latency           sim.Time
	Completed            int
}

// LoadSweepResult measures query latency under open-loop batch arrivals —
// the service-level view of the paper's throughput claim ("throughput is
// crucial to user experience", §I): the ReACH mapping sustains ~4.5× the
// arrival rate of on-chip acceleration before latency diverges.
type LoadSweepResult struct {
	Option string
	Points []*LoadPoint
}

// loadSweepSpecs is the run matrix: one open-loop run per offered rate,
// arrivals scheduled via SubmitAt under the arrival spec.
func loadSweepSpecs(m workload.Model, mp Mapping, n int, rates []float64, batches int, arr ArrivalSpec) []RunSpec {
	specs := make([]RunSpec, len(rates))
	for i, rate := range rates {
		specs[i] = RunSpec{
			Name:      fmt.Sprintf("loadsweep %.2f b/s", rate),
			Model:     m,
			Mapping:   mp,
			Instances: n,
			Batches:   batches,
			SubmitAt:  arr.schedule(rate, batches, int64(i)),
		}
	}
	return specs
}

// loadPoint reduces one rate's run to its latency statistics.
func loadPoint(rate float64, run *RunResult) *LoadPoint {
	hist := sim.NewHistogram()
	for _, j := range run.Jobs {
		hist.Add(j.Latency())
	}
	return &LoadPoint{
		OfferedBatchesPerSec: rate,
		MeanLatency:          hist.Mean(),
		P99Latency:           hist.Quantile(0.99),
		Completed:            hist.Count(),
	}
}

// LoadSweep submits `batches` jobs at a fixed arrival interval and
// records completion latencies for each offered rate.
func LoadSweep(m workload.Model, mp Mapping, n int, rates []float64, batches int, opts ...Option) (*LoadSweepResult, error) {
	runs, err := RunSpecs(loadSweepSpecs(m, mp, n, rates, batches, ArrivalSpec{}), opts...)
	if err != nil {
		return nil, err
	}
	res := &LoadSweepResult{}
	for i, rate := range rates {
		res.Points = append(res.Points, loadPoint(rate, runs[i]))
	}
	return res, nil
}

// DefaultLoadRates spans from light load past the on-chip saturation point
// toward the ReACH one.
func DefaultLoadRates() []float64 {
	return []float64{0.5, 1, 1.5, 2, 3, 4, 5, 6, 7}
}

// LoadSweepBoth runs the sweep for the on-chip baseline and the ReACH
// mapping.
func LoadSweepBoth(m workload.Model, opts ...Option) (onchip, reach *LoadSweepResult, err error) {
	onchip, err = LoadSweep(m, SingleLevel(accel.OnChip), 1, DefaultLoadRates(), 24, opts...)
	if err != nil {
		return nil, nil, err
	}
	onchip.Option = "onchip"
	reach, err = LoadSweep(m, ReACHMapping(), 4, DefaultLoadRates(), 24, opts...)
	if err != nil {
		return nil, nil, err
	}
	reach.Option = "ReACH"
	return onchip, reach, nil
}

// SaturationRate reports the highest offered rate whose mean latency stays
// under `bound` — the sustainable service rate.
func (r *LoadSweepResult) SaturationRate(bound sim.Time) float64 {
	best := 0.0
	for _, p := range r.Points {
		if p.MeanLatency <= bound && p.OfferedBatchesPerSec > best {
			best = p.OfferedBatchesPerSec
		}
	}
	return best
}

// LoadSweepTable renders both options side by side.
func LoadSweepTable(onchip, reach *LoadSweepResult) *report.Table {
	t := &report.Table{
		Title: "Load sweep — batch latency vs offered arrival rate (open loop)",
		Columns: []string{"Offered b/s", "onchip mean ms", "onchip p99 ms",
			"ReACH mean ms", "ReACH p99 ms"},
	}
	for i := range onchip.Points {
		o, rr := onchip.Points[i], reach.Points[i]
		t.AddRow(
			report.F(o.OfferedBatchesPerSec, 1),
			report.F(o.MeanLatency.Milliseconds(), 0),
			report.F(o.P99Latency.Milliseconds(), 0),
			report.F(rr.MeanLatency.Milliseconds(), 0),
			report.F(rr.P99Latency.Milliseconds(), 0),
		)
	}
	bound := 2 * sim.Second
	t.AddNote("sustainable rate (mean < 2 s): onchip %.1f b/s, ReACH %.1f b/s (%.1fx)",
		onchip.SaturationRate(bound), reach.SaturationRate(bound),
		reach.SaturationRate(bound)/onchip.SaturationRate(bound))
	return t
}
