// Package mem models the main-memory system of the ReACH server: DDR4
// DIMMs with banks and row buffers, FR-FCFS memory controllers with bounded
// read/write queues, channel interleaving policies (cacheline-granularity
// for the CPU/on-chip accelerator, tile-granularity for near-memory
// accelerators, paper §III-B), and the DIMM control handoff used by AIM
// modules (§II-B).
//
// Two levels of fidelity coexist:
//
//   - a request-level discrete-event model (Controller) that simulates each
//     64-byte access through bank timing and data-bus contention, used by
//     latency-sensitive paths and by validation tests;
//   - a bulk-stream model (Channel.Stream / Channel.RandomAccess) that
//     accounts multi-megabyte accelerator transfers analytically at the
//     effective bandwidth implied by the same timing parameters, so
//     billion-scale workloads simulate quickly.
package mem

import (
	"fmt"

	"repro/internal/sim"
)

// DDR4Timing holds the JEDEC-style timing parameters the bank model uses,
// all in picoseconds. Defaults correspond to DDR4-2400 (CL17).
type DDR4Timing struct {
	TCK  sim.Time // bus clock period (data rate is 2/TCK transfers/s)
	CL   sim.Time // CAS latency
	TRCD sim.Time // activate to read/write
	TRP  sim.Time // precharge
	TRAS sim.Time // activate to precharge (minimum row-open time)
	TWR  sim.Time // write recovery
	BL   int      // burst length (transfers per access)
	// TREFI is the average refresh interval (one REF command per tREFI);
	// TRFC is the refresh cycle time during which the whole rank is
	// unavailable. Refresh steals TRFC/TREFI ≈ 4-5 % of bandwidth.
	TREFI sim.Time
	TRFC  sim.Time
}

// DDR42400 returns DDR4-2400 CL17 timing. One 64-byte line is BL=8
// transfers on a 64-bit bus.
func DDR42400() DDR4Timing {
	tck := sim.Time(833) // 0.833 ns
	return DDR4Timing{
		TCK:   tck,
		CL:    17 * 833 * sim.Picosecond,
		TRCD:  17 * 833 * sim.Picosecond,
		TRP:   17 * 833 * sim.Picosecond,
		TRAS:  39 * 833 * sim.Picosecond,
		TWR:   18 * 833 * sim.Picosecond,
		BL:    8,
		TREFI: 7800 * sim.Nanosecond, // 7.8 µs
		TRFC:  350 * sim.Nanosecond,  // 8 Gb-class device
	}
}

// BurstTime is the data-bus occupancy of one access: BL transfers at double
// data rate = BL/2 bus clocks.
func (t DDR4Timing) BurstTime() sim.Time {
	return sim.Time(t.BL/2) * t.TCK
}

// PeakBandwidth reports the theoretical channel bandwidth in bytes/second
// for a 64-bit (8-byte) bus.
func (t DDR4Timing) PeakBandwidth() float64 {
	transfersPerSec := 2.0 / t.TCK.Seconds()
	return transfersPerSec * 8
}

// Geometry describes the address organisation of a DIMM.
type Geometry struct {
	Banks    int   // banks per rank (DDR4: 16)
	Ranks    int   // ranks per DIMM
	RowBytes int64 // row-buffer size (typical: 8 KiB per bank row)
	LineSize int64 // access granularity (cache line)
}

// DefaultGeometry returns a single-rank, 16-bank DIMM with 8 KiB rows.
func DefaultGeometry() Geometry {
	return Geometry{Banks: 16, Ranks: 1, RowBytes: 8 << 10, LineSize: 64}
}

func (g Geometry) totalBanks() int { return g.Banks * g.Ranks }

// bank tracks per-bank row-buffer state.
type bank struct {
	openRow   int64 // -1 when precharged (closed)
	readyAt   sim.Time
	openedAt  sim.Time
	activates uint64
	rowHits   uint64
	rowMisses uint64
}

// DIMM is one dual-inline memory module: a set of banks behind a shared
// data bus. The AIM near-memory architecture attaches one accelerator per
// DIMM; Handoff/Handback model the memory controller ceding control of the
// DIMM to the AIM module during kernel execution (§II-B).
type DIMM struct {
	eng    *sim.Engine
	name   string
	timing DDR4Timing
	geom   Geometry
	banks  []bank
	bus    *sim.Link

	controlledByAIM bool
	handoffs        uint64

	nextRefresh sim.Time
	refreshes   uint64

	// policy selects row-buffer management (open page by default).
	policy PagePolicy
}

// PagePolicy selects the row-buffer management strategy.
type PagePolicy int

const (
	// OpenPage leaves rows open after access (best for locality-rich
	// streams; the host controller's default).
	OpenPage PagePolicy = iota
	// ClosedPage precharges after every access (best for random traffic,
	// and the state AIM modules must leave the DIMM in, §II-B).
	ClosedPage
)

func (p PagePolicy) String() string {
	if p == ClosedPage {
		return "closed-page"
	}
	return "open-page"
}

// SetPagePolicy switches the DIMM's row-buffer management.
func (d *DIMM) SetPagePolicy(p PagePolicy) { d.policy = p }

// PagePolicy reports the active policy.
func (d *DIMM) PagePolicy() PagePolicy { return d.policy }

// NewDIMM constructs a DIMM on eng.
func NewDIMM(eng *sim.Engine, name string, timing DDR4Timing, geom Geometry) *DIMM {
	if geom.totalBanks() <= 0 || geom.RowBytes <= 0 || geom.LineSize <= 0 {
		panic(fmt.Sprintf("mem: invalid geometry %+v", geom))
	}
	d := &DIMM{
		eng:    eng,
		name:   name,
		timing: timing,
		geom:   geom,
		banks:  make([]bank, geom.totalBanks()),
		bus:    sim.NewLink(eng, name+".bus", timing.PeakBandwidth(), 0),
	}
	for i := range d.banks {
		d.banks[i].openRow = -1
	}
	d.nextRefresh = timing.TREFI
	return d
}

// Name reports the DIMM's diagnostic name.
func (d *DIMM) Name() string { return d.name }

// decode splits a physical address into bank and row indices. Banks are
// interleaved at line granularity so sequential lines hit different banks
// (standard bank interleaving), and a full stripe of lines across all banks
// shares rows.
func (d *DIMM) decode(addr int64) (bankIdx int, row int64) {
	line := addr / d.geom.LineSize
	nb := int64(d.geom.totalBanks())
	bankIdx = int(line % nb)
	linesPerRow := d.geom.RowBytes / d.geom.LineSize
	row = (line / nb) / linesPerRow
	return bankIdx, row
}

// Access performs one line access at the current simulated time and returns
// the completion time of the data burst. The bank model applies row-hit,
// row-closed and row-conflict timing; the data bus serialises bursts.
func (d *DIMM) Access(addr int64, write bool) sim.Time {
	now := d.eng.Now()
	bi, row := d.decode(addr)
	b := &d.banks[bi]

	start := now
	if b.readyAt > start {
		start = b.readyAt
	}
	start = d.applyRefresh(start)

	// Activation lookahead: with queued requests the controller issues
	// PRE/ACT on the command bus while earlier bursts still occupy the
	// data bus, so activation latency is charged only where the bank was
	// not idle long enough to hide it (FR-FCFS command overlap).
	var cmdDone sim.Time
	switch {
	case b.openRow == row:
		b.rowHits++
		cmdDone = start + d.timing.CL
	case b.openRow == -1:
		b.rowMisses++
		b.activates++
		actAt := maxTime(b.readyAt, now)
		b.openedAt = actAt
		cmdDone = maxTime(actAt+d.timing.TRCD, start) + d.timing.CL
		b.openRow = row
	default:
		// Row conflict: respect tRAS before precharging the open row.
		b.rowMisses++
		b.activates++
		pre := maxTime(b.readyAt, now)
		if minClose := b.openedAt + d.timing.TRAS; minClose > pre {
			pre = minClose
		}
		actAt := pre + d.timing.TRP
		cmdDone = maxTime(actAt+d.timing.TRCD, start) + d.timing.CL
		b.openRow = row
		b.openedAt = actAt
	}

	// Burst occupies the shared data bus.
	done := d.bus.TransferAt(maxTime(cmdDone, now), d.geom.LineSize)
	b.readyAt = done
	if write {
		b.readyAt += d.timing.TWR
	}
	if d.policy == ClosedPage {
		// Auto-precharge: the row closes with the burst; the precharge
		// overlaps the next access's command phase (charged via the
		// closed-row path it will take).
		b.openRow = -1
	}
	return done
}

// applyRefresh accounts for REF commands due before `start`: each pending
// refresh blocks the rank for tRFC, closing all rows. Returns the adjusted
// earliest start time. Disabled when TREFI is zero.
func (d *DIMM) applyRefresh(start sim.Time) sim.Time {
	if d.timing.TREFI <= 0 {
		return start
	}
	// Refreshes are keyed to wall-clock (engine) time: bank-ready times
	// include future bus reservations and must not pull refreshes forward,
	// or every refresh would re-inflate all banks' ready times and cascade.
	for d.nextRefresh <= d.eng.Now() {
		refEnd := d.nextRefresh + d.timing.TRFC
		d.refreshes++
		// Refresh precharges every bank.
		for i := range d.banks {
			d.banks[i].openRow = -1
			if d.banks[i].readyAt < refEnd {
				d.banks[i].readyAt = refEnd
			}
		}
		if start < refEnd {
			start = refEnd
		}
		d.nextRefresh += d.timing.TREFI
	}
	return start
}

// Refreshes reports REF commands issued so far.
func (d *DIMM) Refreshes() uint64 { return d.refreshes }

// PrechargeAll closes every row — the state the AIM module must leave the
// DIMM in before handing control back to the host memory controller, so
// the controller can assume all banks are precharged (§II-B).
func (d *DIMM) PrechargeAll() sim.Time {
	now := d.eng.Now()
	var latest sim.Time = now
	for i := range d.banks {
		b := &d.banks[i]
		if b.openRow == -1 {
			continue
		}
		start := maxTime(now, b.readyAt)
		if minClose := b.openedAt + d.timing.TRAS; minClose > start {
			start = minClose
		}
		closed := start + d.timing.TRP
		b.openRow = -1
		b.readyAt = closed
		if closed > latest {
			latest = closed
		}
	}
	return latest
}

// Handoff transfers control of the DIMM to its AIM module. It is an error
// to hand off a DIMM that is already accelerator-controlled.
func (d *DIMM) Handoff() error {
	if d.controlledByAIM {
		return fmt.Errorf("mem: %s already controlled by AIM", d.name)
	}
	d.controlledByAIM = true
	d.handoffs++
	return nil
}

// Handback returns control to the host memory controller, enforcing the
// closed-row policy, and reports when the DIMM is usable by the host.
func (d *DIMM) Handback() (sim.Time, error) {
	if !d.controlledByAIM {
		return 0, fmt.Errorf("mem: %s not controlled by AIM", d.name)
	}
	t := d.PrechargeAll()
	d.controlledByAIM = false
	return t, nil
}

// ControlledByAIM reports whether the DIMM is currently accelerator-owned.
func (d *DIMM) ControlledByAIM() bool { return d.controlledByAIM }

// Handoffs reports how many control transfers occurred.
func (d *DIMM) Handoffs() uint64 { return d.handoffs }

// RowHitRate reports the fraction of accesses that hit an open row.
func (d *DIMM) RowHitRate() float64 {
	var hits, total uint64
	for i := range d.banks {
		hits += d.banks[i].rowHits
		total += d.banks[i].rowHits + d.banks[i].rowMisses
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Activates reports the total row activations, the dominant term of DRAM
// dynamic energy.
func (d *DIMM) Activates() uint64 {
	var n uint64
	for i := range d.banks {
		n += d.banks[i].activates
	}
	return n
}

// BusBytes reports total data moved over the DIMM bus.
func (d *DIMM) BusBytes() uint64 { return d.bus.TotalBytes() }

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

// bankReady reports when the bank serving addr is next available.
func (d *DIMM) bankReady(addr int64) sim.Time {
	bi, _ := d.decode(addr)
	return d.banks[bi].readyAt
}
