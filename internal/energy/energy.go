// Package energy implements the energy model of the ReACH evaluation
// (paper §V, Table IV): per-component meters for accelerators, cache, DRAM,
// SSD, memory-controller/interconnect and PCIe, with attribution to
// application pipeline stages so the Figure 8 and Figure 13c breakdowns can
// be reproduced.
//
// The paper derives its numbers from SDAccel post-routing reports, the
// Xilinx Power Estimator, CACTI 6.5, the Micron DDR4 power calculator and
// NVMe SSD datasheets. This reproduction replaces those tools with
// documented per-byte and per-watt constants (see Costs) calibrated so that
// the on-chip end-to-end run reproduces the published energy distribution:
// ~79 % of energy in data movement, with the rerank stage's movement alone
// ~52 % of the total.
package energy

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Component identifies one energy-bearing part of the system — the
// categories of the paper's Figure 8 / Figure 13c x-axes.
type Component int

const (
	// ACC is accelerator (FPGA kernel) energy.
	ACC Component = iota
	// Cache is shared-cache access energy.
	Cache
	// DRAM is main-memory (and near-storage buffer) energy.
	DRAM
	// SSD is storage device energy.
	SSD
	// MCInterconnect is memory-controller and on-chip interconnect energy.
	MCInterconnect
	// PCIe is host-IO and device link energy.
	PCIe

	numComponents
)

// Components lists all components in the paper's presentation order.
func Components() []Component {
	return []Component{ACC, Cache, DRAM, SSD, MCInterconnect, PCIe}
}

func (c Component) String() string {
	switch c {
	case ACC:
		return "ACC"
	case Cache:
		return "Cache"
	case DRAM:
		return "DRAM"
	case SSD:
		return "SSD"
	case MCInterconnect:
		return "MC and Interconnect"
	case PCIe:
		return "PCIe"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// Kind classifies energy as compute or data movement — the split of the
// right-hand chart of Figure 8.
type Kind int

const (
	// Compute is energy spent in accelerator datapaths.
	Compute Kind = iota
	// Movement is energy spent moving bytes through the memory/IO
	// hierarchy.
	Movement
)

func (k Kind) String() string {
	if k == Compute {
		return "Compute"
	}
	return "Data movement"
}

// Costs holds the model constants. All movement constants are joules per
// byte for one traversal of that component; power constants are watts.
//
// Calibration rationale (full derivation in DESIGN.md §5):
//
//   - DRAMPerByte 1.5 nJ/B: end-to-end DDR4 access energy at 64 B
//     granularity including activation amortisation and IO/termination —
//     the upper-middle of the range measured in [33].
//   - CachePerByte 0.6 nJ/B: multi-megabyte shared LLC access energy per
//     byte (CACTI 6.5 class values for a 2 MB array plus NoC traversal).
//   - SSDPerByte 2.5 nJ/B: enterprise NVMe read energy (≈10 W at 4 GB/s
//     mixed-pattern throughput, Nytro-class device [30]).
//   - PCIePerByte 0.6 nJ/B: Gen3 link + switch energy [31][32].
//   - MCPerByte 0.5 nJ/B: controller queues and on-chip interconnect.
//   - AIMBusPerByte 0.3 nJ/B: short inter-DIMM hop.
type Costs struct {
	CachePerByte  float64
	DRAMPerByte   float64
	MCPerByte     float64
	SSDPerByte    float64
	PCIePerByte   float64
	AIMBusPerByte float64

	// DRAMBackgroundWPerDIMM is per-DIMM background (refresh + standby)
	// power, charged for the duration of an experiment.
	DRAMBackgroundWPerDIMM float64
	// SSDIdleW is per-device idle power.
	SSDIdleW float64
}

// DefaultCosts returns the calibrated constants.
func DefaultCosts() Costs {
	return Costs{
		CachePerByte:           0.6e-9,
		DRAMPerByte:            1.5e-9,
		MCPerByte:              0.5e-9,
		SSDPerByte:             2.5e-9,
		PCIePerByte:            0.6e-9,
		AIMBusPerByte:          0.3e-9,
		DRAMBackgroundWPerDIMM: 0.9,
		SSDIdleW:               2.0,
	}
}

type cellKey struct {
	c     Component
	stage string
	kind  Kind
}

// Meter accumulates energy, attributed to (component, pipeline stage,
// compute-vs-movement).
type Meter struct {
	costs Costs
	cells map[cellKey]float64
}

// NewMeter creates a meter with the given constants.
func NewMeter(costs Costs) *Meter {
	return &Meter{costs: costs, cells: make(map[cellKey]float64)}
}

// Costs reports the meter's constants.
func (m *Meter) Costs() Costs { return m.costs }

// Add records joules against (component, stage, kind).
func (m *Meter) Add(c Component, stage string, kind Kind, joules float64) {
	if joules < 0 {
		panic(fmt.Sprintf("energy: negative energy %v for %v/%s", joules, c, stage))
	}
	m.cells[cellKey{c, stage, kind}] += joules
}

// AddActive records P×t compute energy for an accelerator.
func (m *Meter) AddActive(stage string, powerW float64, d sim.Time) {
	m.Add(ACC, stage, Compute, powerW*d.Seconds())
}

// Movement helpers: each charges bytes × the component constant as
// movement energy.

// CacheTraffic records LLC access energy.
func (m *Meter) CacheTraffic(stage string, bytes int64) {
	m.Add(Cache, stage, Movement, float64(bytes)*m.costs.CachePerByte)
}

// DRAMTraffic records one DRAM traversal.
func (m *Meter) DRAMTraffic(stage string, bytes int64) {
	m.Add(DRAM, stage, Movement, float64(bytes)*m.costs.DRAMPerByte)
}

// MCTraffic records memory-controller/interconnect energy.
func (m *Meter) MCTraffic(stage string, bytes int64) {
	m.Add(MCInterconnect, stage, Movement, float64(bytes)*m.costs.MCPerByte)
}

// SSDTraffic records storage read/write energy.
func (m *Meter) SSDTraffic(stage string, bytes int64) {
	m.Add(SSD, stage, Movement, float64(bytes)*m.costs.SSDPerByte)
}

// PCIeTraffic records host-IO or device link energy.
func (m *Meter) PCIeTraffic(stage string, bytes int64) {
	m.Add(PCIe, stage, Movement, float64(bytes)*m.costs.PCIePerByte)
}

// AIMBusTraffic records inter-DIMM bus energy (accounted to
// MC/Interconnect, where the paper's breakdown places it).
func (m *Meter) AIMBusTraffic(stage string, bytes int64) {
	m.Add(MCInterconnect, stage, Movement, float64(bytes)*m.costs.AIMBusPerByte)
}

// AddBackground charges DRAM background and SSD idle power for an
// experiment window.
func (m *Meter) AddBackground(stage string, dimms, ssds int, d sim.Time) {
	m.Add(DRAM, stage, Movement, float64(dimms)*m.costs.DRAMBackgroundWPerDIMM*d.Seconds())
	m.Add(SSD, stage, Movement, float64(ssds)*m.costs.SSDIdleW*d.Seconds())
}

// Total reports total joules.
func (m *Meter) Total() float64 {
	var sum float64
	for _, v := range m.cells {
		sum += v
	}
	return sum
}

// Component reports total joules for one component.
func (m *Meter) Component(c Component) float64 {
	var sum float64
	for k, v := range m.cells {
		if k.c == c {
			sum += v
		}
	}
	return sum
}

// Stage reports total joules for one pipeline stage.
func (m *Meter) Stage(stage string) float64 {
	var sum float64
	for k, v := range m.cells {
		if k.stage == stage {
			sum += v
		}
	}
	return sum
}

// StageKind reports joules for (stage, kind) — the Figure 8 right chart.
func (m *Meter) StageKind(stage string, kind Kind) float64 {
	var sum float64
	for k, v := range m.cells {
		if k.stage == stage && k.kind == kind {
			sum += v
		}
	}
	return sum
}

// ComponentStage reports joules for (component, stage) — the Figure 8 left
// chart's stacking.
func (m *Meter) ComponentStage(c Component, stage string) float64 {
	var sum float64
	for k, v := range m.cells {
		if k.c == c && k.stage == stage {
			sum += v
		}
	}
	return sum
}

// Kind reports total joules of one kind.
func (m *Meter) Kind(kind Kind) float64 {
	var sum float64
	for k, v := range m.cells {
		if k.kind == kind {
			sum += v
		}
	}
	return sum
}

// MovementShare reports movement / total, the paper's headline "79 % of the
// remaining energy cost is due to data movement".
func (m *Meter) MovementShare() float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	return m.Kind(Movement) / t
}

// Stages lists the stage labels seen so far, sorted.
func (m *Meter) Stages() []string {
	set := map[string]bool{}
	for k := range m.cells {
		set[k.stage] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Merge adds all of other's cells into m.
func (m *Meter) Merge(other *Meter) {
	for k, v := range other.cells {
		m.cells[k] += v
	}
}

// Reset clears all accumulated energy.
func (m *Meter) Reset() {
	m.cells = make(map[cellKey]float64)
}
