package experiments

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// LoadPoint is one offered-load measurement.
type LoadPoint struct {
	OfferedBatchesPerSec float64
	MeanLatency          sim.Time
	P99Latency           sim.Time
	Completed            int
}

// LoadSweepResult measures query latency under open-loop batch arrivals —
// the service-level view of the paper's throughput claim ("throughput is
// crucial to user experience", §I): the ReACH mapping sustains ~4.5× the
// arrival rate of on-chip acceleration before latency diverges.
type LoadSweepResult struct {
	Option string
	Points []*LoadPoint
}

// LoadSweep submits `batches` jobs at a fixed arrival interval and
// records completion latencies for each offered rate.
func LoadSweep(m workload.Model, mp Mapping, n int, rates []float64, batches int) (*LoadSweepResult, error) {
	res := &LoadSweepResult{}
	for _, rate := range rates {
		sys, err := core.NewSystem(configFor(mp, n))
		if err != nil {
			return nil, err
		}
		interval := sim.FromSeconds(1 / rate)
		var jobs []*core.Job
		for b := 0; b < batches; b++ {
			j, err := BuildPipelineJob(sys, b, m, mp)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, j)
			job := j
			sys.Engine().At(sim.Time(b)*interval, func() {
				if err := sys.GAM().Submit(job); err != nil {
					panic(err)
				}
			})
		}
		sys.Run()
		hist := sim.NewHistogram()
		for _, j := range jobs {
			if !j.Done() {
				return nil, fmt.Errorf("experiments: job %d incomplete at rate %.2f", j.ID, rate)
			}
			hist.Add(j.Latency())
		}
		res.Points = append(res.Points, &LoadPoint{
			OfferedBatchesPerSec: rate,
			MeanLatency:          hist.Mean(),
			P99Latency:           hist.Quantile(0.99),
			Completed:            hist.Count(),
		})
	}
	return res, nil
}

// DefaultLoadRates spans from light load past the on-chip saturation point
// toward the ReACH one.
func DefaultLoadRates() []float64 {
	return []float64{0.5, 1, 1.5, 2, 3, 4, 5, 6, 7}
}

// LoadSweepBoth runs the sweep for the on-chip baseline and the ReACH
// mapping.
func LoadSweepBoth(m workload.Model) (onchip, reach *LoadSweepResult, err error) {
	onchip, err = LoadSweep(m, SingleLevel(accel.OnChip), 1, DefaultLoadRates(), 24)
	if err != nil {
		return nil, nil, err
	}
	onchip.Option = "onchip"
	reach, err = LoadSweep(m, ReACHMapping(), 4, DefaultLoadRates(), 24)
	if err != nil {
		return nil, nil, err
	}
	reach.Option = "ReACH"
	return onchip, reach, nil
}

// SaturationRate reports the highest offered rate whose mean latency stays
// under `bound` — the sustainable service rate.
func (r *LoadSweepResult) SaturationRate(bound sim.Time) float64 {
	best := 0.0
	for _, p := range r.Points {
		if p.MeanLatency <= bound && p.OfferedBatchesPerSec > best {
			best = p.OfferedBatchesPerSec
		}
	}
	return best
}

// LoadSweepTable renders both options side by side.
func LoadSweepTable(onchip, reach *LoadSweepResult) *report.Table {
	t := &report.Table{
		Title: "Load sweep — batch latency vs offered arrival rate (open loop)",
		Columns: []string{"Offered b/s", "onchip mean ms", "onchip p99 ms",
			"ReACH mean ms", "ReACH p99 ms"},
	}
	for i := range onchip.Points {
		o, rr := onchip.Points[i], reach.Points[i]
		t.AddRow(
			report.F(o.OfferedBatchesPerSec, 1),
			report.F(o.MeanLatency.Milliseconds(), 0),
			report.F(o.P99Latency.Milliseconds(), 0),
			report.F(rr.MeanLatency.Milliseconds(), 0),
			report.F(rr.P99Latency.Milliseconds(), 0),
		)
	}
	bound := 2 * sim.Second
	t.AddNote("sustainable rate (mean < 2 s): onchip %.1f b/s, ReACH %.1f b/s (%.1fx)",
		onchip.SaturationRate(bound), reach.SaturationRate(bound),
		reach.SaturationRate(bound)/onchip.SaturationRate(bound))
	return t
}
