// Command reachsim regenerates the tables and figures of the ReACH paper's
// evaluation section from the cycle-level simulator.
//
// Usage:
//
//	reachsim -exp fig13            # one experiment
//	reachsim -exp all              # everything
//	reachsim -exp fig9 -csv        # CSV instead of aligned text
//	reachsim -list                 # list experiment ids
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

var experimentIDs = []string{
	"table1", "table2", "table3", "table4",
	"fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
	"ablation-gam", "ablation-mapping", "ablation-nsbuffer", "ablation-granularity",
	"motivation", "loadsweep", "skew", "reverselookup", "multitenant", "recallsweep",
}

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id (see -list)")
		csvOut    = flag.Bool("csv", false, "emit CSV instead of aligned text")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		cfgPath   = flag.String("config", "", "optional system config JSON (defaults to Table II)")
		tracePath = flag.String("trace", "", "write a Chrome trace of a ReACH pipeline run to this file")
		stats     = flag.Bool("stats", false, "run a ReACH pipeline and dump all component statistics")
	)
	flag.Parse()

	if *stats {
		run, err := experiments.RunPipeline(workload.DefaultModel(), experiments.ReACHMapping(), 4, 8)
		if err != nil {
			fatal(err)
		}
		if err := run.Sys.WriteSnapshot(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
		t := report.ResourceTable(run.Sys.Engine().Stats())
		if err := emit(t, os.Stdout, *csvOut); err != nil {
			fatal(err)
		}
		return
	}

	if *tracePath != "" {
		if err := writeTrace(*tracePath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (open in chrome://tracing or Perfetto)\n", *tracePath)
		return
	}

	if *list {
		for _, id := range experimentIDs {
			fmt.Println(id)
		}
		return
	}

	cfg := config.Default()
	if *cfgPath != "" {
		var err error
		cfg, err = config.Load(*cfgPath)
		if err != nil {
			fatal(err)
		}
	}
	m := workload.DefaultModel()

	ids := []string{*exp}
	if *exp == "all" {
		ids = experimentIDs
	}
	for _, id := range ids {
		tables, err := run(id, cfg, m)
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			if err := emit(t, os.Stdout, *csvOut); err != nil {
				fatal(err)
			}
		}
	}
}

func run(id string, cfg config.SystemConfig, m workload.Model) ([]*report.Table, error) {
	switch strings.ToLower(id) {
	case "table1":
		return []*report.Table{experiments.TableI(m)}, nil
	case "table2":
		return []*report.Table{experiments.TableII(cfg)}, nil
	case "table3":
		return []*report.Table{experiments.TableIII()}, nil
	case "table4":
		return []*report.Table{experiments.TableIV(energy.DefaultCosts())}, nil
	case "fig8":
		r, err := experiments.Fig8(m)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	case "fig9":
		s, err := experiments.Fig9(m)
		if err != nil {
			return nil, err
		}
		return []*report.Table{s.Table("Fig 9")}, nil
	case "fig10":
		s, err := experiments.Fig10(m)
		if err != nil {
			return nil, err
		}
		return []*report.Table{s.Table("Fig 10")}, nil
	case "fig11":
		s, err := experiments.Fig11(m)
		if err != nil {
			return nil, err
		}
		return []*report.Table{s.Table("Fig 11")}, nil
	case "fig12":
		r, err := experiments.Fig12(m)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	case "fig13":
		r, err := experiments.Fig13(m)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	case "ablation-gam":
		r, err := experiments.AblationGAM(m)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	case "ablation-mapping":
		r, err := experiments.AblationMapping(m)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	case "ablation-granularity":
		r, err := experiments.AblationGranularity(m)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	case "recallsweep":
		r, err := experiments.RecallSweep(m)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	case "multitenant":
		r, err := experiments.MultiTenant(m)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	case "reverselookup":
		r, err := experiments.ReverseLookup(m)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	case "skew":
		r, err := experiments.SkewExperiment(m)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	case "loadsweep":
		onchip, reach, err := experiments.LoadSweepBoth(m)
		if err != nil {
			return nil, err
		}
		return []*report.Table{experiments.LoadSweepTable(onchip, reach)}, nil
	case "ablation-nsbuffer":
		r, err := experiments.AblationNSBuffer(m)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	case "motivation":
		r, err := experiments.Motivation()
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	default:
		return nil, fmt.Errorf("unknown experiment %q (use -list)", id)
	}
}

func emit(t *report.Table, w io.Writer, csv bool) error {
	if csv {
		return t.CSV(w)
	}
	return t.Render(w)
}

// writeTrace runs an 8-batch ReACH pipeline and dumps its timeline.
func writeTrace(path string) error {
	run, err := experiments.RunPipeline(workload.DefaultModel(), experiments.ReACHMapping(), 4, 8)
	if err != nil {
		return err
	}
	tl := trace.NewTimeline()
	for _, j := range run.Jobs {
		if err := tl.AddJob(j); err != nil {
			return err
		}
	}
	tl.AddResources(run.Sys.Engine().Stats(), run.Sys.Engine().Now())
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tl.WriteJSON(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reachsim:", err)
	os.Exit(1)
}
