package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/accel"
	"repro/internal/sim"
)

// GAM is the hardware global accelerator manager (paper §II-D, Fig. 5).
// It owns a scheduling queue per compute level, a progress table of
// running tasks with estimated wait times, and a status queue; it is the
// single master of every accelerator in the hierarchy.
type GAM struct {
	sys *System

	readyQ  map[accel.Level][]*TaskNode
	claimed map[accel.Accelerator]*TaskNode
	jobs    []*Job

	// streamBufs holds one registered stream buffer (the shared-layer
	// TokenQueue) per src→dst level pair, created on first use. Every
	// inter-level stream chunk passes through its pair's buffer, so stream
	// traffic is accounted in the central registry ("stream.<src>-<dst>").
	streamBufs map[[2]accel.Level]*sim.TokenQueue

	dispatchArmed bool

	// Stats — the observable behaviour of the Fig. 5 machinery.
	stats GAMStats
}

// GAMStats counts the GAM's control-plane activity.
type GAMStats struct {
	JobsSubmitted   uint64
	JobsCompleted   uint64
	TasksDispatched uint64
	CommandPackets  uint64 // ACC command packets sent
	StatusPolls     uint64 // status request packets sent
	Interrupts      uint64 // host interrupts on job completion
	Transfers       uint64 // inter-level DMA transfers initiated
}

// ProgressEntry is one row of the progress table (Fig. 5e).
type ProgressEntry struct {
	Instance string
	Task     string
	Job      int
	State    NodeState
}

func newGAM(s *System) *GAM {
	return &GAM{
		sys:        s,
		readyQ:     make(map[accel.Level][]*TaskNode),
		claimed:    make(map[accel.Accelerator]*TaskNode),
		streamBufs: make(map[[2]accel.Level]*sim.TokenQueue),
	}
}

// Stats returns a snapshot of the control-plane counters.
func (g *GAM) Stats() GAMStats { return g.stats }

// Progress returns the current progress table, sorted by instance name.
func (g *GAM) Progress() []ProgressEntry {
	var out []ProgressEntry
	for acc, n := range g.claimed {
		out = append(out, ProgressEntry{
			Instance: acc.Name(),
			Task:     n.Spec.Name,
			Job:      n.job.ID,
			State:    n.state,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Instance < out[j].Instance })
	return out
}

// QueueDepth reports ready tasks waiting for a level.
func (g *GAM) QueueDepth(l accel.Level) int { return len(g.readyQ[l]) }

// Submit hands a job to the GAM. The host-side runtime sends the job as
// ACC command packets (Fig. 5a); tasks with no dependencies become ready
// immediately.
func (g *GAM) Submit(j *Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	for _, n := range j.Nodes {
		if err := g.sys.checkLevelPopulated(n.Level); err != nil {
			return err
		}
		if n.Pin >= 0 && n.Pin >= g.sys.InstanceCount(n.Level) {
			return fmt.Errorf("core: job %d task %q pinned to %v[%d], only %d instances",
				j.ID, n.Spec.Name, n.Level, n.Pin, g.sys.InstanceCount(n.Level))
		}
	}
	j.SubmittedAt = g.sys.eng.Now()
	g.jobs = append(g.jobs, j)
	g.stats.JobsSubmitted++
	for _, n := range j.Nodes {
		if n.deps == 0 {
			g.markReady(n)
		}
	}
	return nil
}

func (g *GAM) markReady(n *TaskNode) {
	n.state = NodeReady
	n.ReadyAt = g.sys.eng.Now()
	g.readyQ[n.Level] = append(g.readyQ[n.Level], n)
	g.armDispatch()
}

// armDispatch coalesces dispatch work into one event per instant.
func (g *GAM) armDispatch() {
	if g.dispatchArmed {
		return
	}
	g.dispatchArmed = true
	g.sys.eng.Schedule(0, func() {
		g.dispatchArmed = false
		g.dispatchAll()
	})
}

// oldestOpenJob returns the first unfinished job (the gate used when
// cross-job pipelining is disabled).
func (g *GAM) oldestOpenJob() *Job {
	for _, j := range g.jobs {
		if !j.done {
			return j
		}
	}
	return nil
}

// dispatchAll drains every level's ready queue onto idle devices.
func (g *GAM) dispatchAll() {
	gate := (*Job)(nil)
	if !g.sys.cfg.GAM.CrossJobPipelining {
		gate = g.oldestOpenJob()
	}
	// Fixed level order keeps the simulation deterministic (map iteration
	// order would otherwise vary run to run).
	for _, level := range []accel.Level{accel.OnChip, accel.NearMemory, accel.NearStorage, accel.CPU} {
		q := g.readyQ[level]
		if len(q) == 0 {
			continue
		}
		// Priority first, then oldest job (stable within a job): keeps
		// early batches' later stages ahead of later batches' early
		// stages, so pipeline fill does not starve in-flight queries, and
		// lets a latency-sensitive tenant preempt queued bulk work.
		sort.SliceStable(q, func(i, j int) bool {
			if q[i].job.Priority != q[j].job.Priority {
				return q[i].job.Priority > q[j].job.Priority
			}
			return q[i].job.ID < q[j].job.ID
		})
		var rest []*TaskNode
		for _, n := range q {
			if gate != nil && n.job != gate {
				rest = append(rest, n)
				continue
			}
			if now := g.sys.eng.Now(); n.NotBefore > now {
				// Input still in flight: revisit when it lands.
				g.sys.eng.At(n.NotBefore, g.armDispatch)
				rest = append(rest, n)
				continue
			}
			acc := g.pickIdle(level, n.Pin)
			if acc == nil {
				rest = append(rest, n)
				continue
			}
			g.dispatch(n, acc)
		}
		g.readyQ[level] = rest
	}
}

// pickIdle finds an unclaimed, idle instance at the level (honouring pins).
func (g *GAM) pickIdle(l accel.Level, pin int) accel.Accelerator {
	accs := g.sys.Accelerators(l)
	if pin >= 0 {
		a := accs[pin]
		if _, busy := g.claimed[a]; !busy && a.BusyUntil() <= g.sys.eng.Now() {
			return a
		}
		return nil
	}
	for _, a := range accs {
		if _, busy := g.claimed[a]; !busy && a.BusyUntil() <= g.sys.eng.Now() {
			return a
		}
	}
	return nil
}

// dispatch sends one ACC command packet and arranges completion detection.
func (g *GAM) dispatch(n *TaskNode, a accel.Accelerator) {
	g.claimed[a] = n
	n.state = NodeRunning
	n.Instance = a.Name()
	n.DispatchedAt = g.sys.eng.Now()
	g.stats.TasksDispatched++
	g.stats.CommandPackets++

	cl := g.sys.gamCommandLatency()
	estimate := a.Estimate(&n.Spec)
	g.sys.eng.Schedule(cl, func() {
		// Configure the fabric (partial reconfiguration when a different
		// kernel was resident; the delay follows fpga.Fabric's setting —
		// zero by default, as in the paper's evaluation §VI-A).
		if _, err := a.Fabric().Load(n.Spec.Kernel); err != nil {
			panic(fmt.Sprintf("core: kernel/device mismatch on %s: %v", a.Name(), err))
		}
		done, err := a.Execute(&n.Spec)
		if err != nil {
			// The GAM only dispatches to devices it observed idle; an
			// execution refusal means the model's invariants are broken.
			panic(fmt.Sprintf("core: dispatch invariant violated on %s: %v", a.Name(), err))
		}
		n.CompletedAt = done
		if n.Level == accel.OnChip {
			// On-chip accelerators are cache-coherent: completion is
			// observed through the coherent flag without polling.
			g.sys.eng.At(done+cl, func() { g.finish(n, a) })
			return
		}
		// Memory/storage modules cannot interrupt the GAM (§II-D): poll
		// at the estimated completion, and keep polling with refreshed
		// wait estimates until the device reports done.
		firstPoll := g.sys.eng.Now() + estimate
		g.schedulePoll(n, a, firstPoll)
	})
}

// schedulePoll sends a status request packet at pollAt.
func (g *GAM) schedulePoll(n *TaskNode, a accel.Accelerator, pollAt sim.Time) {
	cl := g.sys.gamCommandLatency()
	if minAt := g.sys.eng.Now() + cl; pollAt < minAt {
		pollAt = minAt
	}
	g.sys.eng.At(pollAt, func() {
		g.stats.StatusPolls++
		n.Polls++
		if pollAt >= n.CompletedAt {
			// Status packet returns "finished" with the output region
			// address (Fig. 5b).
			g.sys.eng.Schedule(cl, func() { g.finish(n, a) })
			return
		}
		// Not finished: the device returns a refreshed wait time of
		// remaining × (1+slack), updated in the progress table.
		remaining := n.CompletedAt - pollAt
		next := sim.Time(float64(remaining) * (1 + g.sys.cfg.GAM.StatusSlackFraction))
		if next < cl {
			next = cl
		}
		g.schedulePoll(n, a, pollAt+next)
	})
}

// finish runs when the GAM observes a task's completion: it frees the
// device, forwards outputs to dependents via inter-level DMA, and closes
// the job when its last node completes.
func (g *GAM) finish(n *TaskNode, a accel.Accelerator) {
	n.state = NodeDone
	n.DetectedAt = g.sys.eng.Now()
	delete(g.claimed, a)

	// Forward outputs to each dependent (stream enqueue, duplicated per
	// destination for broadcast semantics). Data-carrying forwards pass
	// through the src→dst stream buffer: the put/get pair completes in the
	// same instant (the DMA already paid the transfer time), so timing is
	// unchanged while stream traffic is accounted at the shared layer.
	for _, d := range n.dependents {
		dep := d
		deliver := func() {
			dep.deps--
			if dep.deps == 0 {
				g.markReady(dep)
			}
		}
		if n.OutBytes > 0 {
			dstIdx := dep.Pin
			if dstIdx < 0 {
				dstIdx = 0
			}
			g.stats.Transfers++
			transferDone := g.sys.Transfer(n.Level, dep.Level, dstIdx, n.OutBytes, n.Spec.Stage)
			buf := g.streamBuf(n.Level, dep.Level)
			g.sys.eng.At(transferDone, func() {
				buf.Put(n, nil)
				buf.Get(func(any) { deliver() })
			})
		} else {
			g.sys.eng.At(g.sys.eng.Now(), deliver)
		}
	}

	if len(n.dependents) == 0 && n.SinkToHost && n.OutBytes > 0 {
		// Terminal node with a Collect stream back to the host: the job
		// isn't complete until the result lands in host memory.
		g.stats.Transfers++
		collected := g.sys.Transfer(n.Level, accel.CPU, 0, n.OutBytes, n.Spec.Stage)
		buf := g.streamBuf(n.Level, accel.CPU)
		g.sys.eng.At(collected, func() {
			buf.Put(n, nil)
			buf.Get(func(any) { g.closeNode(n) })
		})
		g.armDispatch()
		return
	}
	g.closeNode(n)
	g.armDispatch()
}

// streamBuf returns (creating on first use) the registered stream buffer
// for a src→dst level pair. Depth follows the configured default stream
// depth; the buffer is a shared-layer TokenQueue, so puts, gets, occupancy
// and park waits surface through the central stats registry.
func (g *GAM) streamBuf(src, dst accel.Level) *sim.TokenQueue {
	key := [2]accel.Level{src, dst}
	if q, ok := g.streamBufs[key]; ok {
		return q
	}
	depth := g.sys.cfg.GAM.StreamDepth
	if depth < 1 {
		depth = 1
	}
	name := fmt.Sprintf("stream.%s-%s",
		strings.ToLower(src.String()), strings.ToLower(dst.String()))
	q := sim.NewTokenQueue(g.sys.eng, name, depth)
	g.streamBufs[key] = q
	return q
}

// closeNode retires a finished node and completes the job when it was the
// last one.
func (g *GAM) closeNode(n *TaskNode) {
	j := n.job
	j.remaining--
	if j.remaining == 0 {
		// Interrupt the host (Fig. 6 step 3).
		cl := g.sys.gamCommandLatency()
		g.stats.Interrupts++
		g.sys.eng.Schedule(cl, func() {
			j.done = true
			j.FinishedAt = g.sys.eng.Now()
			g.stats.JobsCompleted++
			if j.onDone != nil {
				j.onDone(j)
			}
			// A finished job may unblock the next one when cross-job
			// pipelining is disabled.
			g.armDispatch()
		})
	}
	g.armDispatch()
}
