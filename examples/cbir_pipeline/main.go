// cbir_pipeline reproduces the paper's Listings 2 and 3 in full: the
// billion-scale CBIR meta-accelerator deployed across all three compute
// levels, run for a stream of query batches, with the functional retrieval
// layer (real k-means index, real distance computations, recall check)
// running beside the simulated hierarchy.
//
//	go run ./examples/cbir_pipeline [-batches 8]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cbir"
	"repro/internal/workload"
	"repro/reach"
)

func main() {
	batches := flag.Int("batches", 8, "query batches to stream through the pipeline")
	flag.Parse()

	m := workload.DefaultModel()

	// ======================= config.h (Listing 2) ========================
	sys, err := reach.NewSystem() // Table II: 1 on-chip, 4 near-mem, 4 near-storage
	if err != nil {
		log.Fatal(err)
	}

	// ReACH::Buffer — fixed data regions.
	if _, err := sys.CreateFixedBuffer("vgg16_param", reach.OnChip, m.CNN.CompressedParamBytes()); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := sys.CreateFixedBufferAt("centroids", reach.NearMem, m.CentroidStoreBytes()/4, i); err != nil {
			log.Fatal(err)
		}
	}
	dbs := make([]*reach.Buffer, 4)
	for i := range dbs {
		dbs[i], err = sys.CreateFixedBufferAt(fmt.Sprintf("feature_db%d", i), reach.NearStor, m.FeatureStoreBytes()/4, i)
		if err != nil {
			log.Fatal(err)
		}
	}

	// ReACH::Stream — inter-level communication.
	input := mustStream(sys.CreateStream("Input", reach.CPU, reach.OnChip, reach.Pair, m.BatchImageBytes(), 2))
	features := mustStream(sys.CreateStream("Features", reach.OnChip, reach.NearMem, reach.BroadCast, m.BatchFeatureBytes(), 2))
	shortlists := mustStream(sys.CreateStream("Shortlists", reach.NearMem, reach.NearStor, reach.BroadCast, m.ShortlistResultBytesPerBatch(), 2))
	result := mustStream(sys.CreateStream("Result", reach.NearStor, reach.CPU, reach.Collect, m.ResultBytesPerBatch(), 2))

	// ReACH::ACC — register accelerators and bind arguments.
	cnnAcc, err := sys.RegisterAcc("VGG16-VU9P", reach.OnChip)
	if err != nil {
		log.Fatal(err)
	}
	must(cnnAcc.SetArg(0, input))
	must(cnnAcc.SetArg(2, features))
	cnnAcc.SetWork(reach.Work{
		Stage: "FeatureExtraction", MACs: m.FeatureMACsPerBatch(),
		SPMResident: true, OutputBytes: m.BatchFeatureBytes(),
	})

	var sls, knns []*reach.ACC
	for i := 0; i < 4; i++ {
		sl, err := sys.RegisterAcc("GEMM-ZCU9", reach.NearMem)
		if err != nil {
			log.Fatal(err)
		}
		must(sl.SetArg(0, features))
		must(sl.SetArg(2, shortlists))
		sl.SetWork(reach.Work{
			Stage: "ShortlistRetrieval",
			MACs:  m.ShortlistMACsPerBatch() / 4, StreamBytes: m.ShortlistScanBytesPerBatch() / 4,
			OutputBytes: m.ShortlistResultBytesPerBatch() / 4,
		})
		sls = append(sls, sl)

		knn, err := sys.RegisterAcc("KNN-ZCU9", reach.NearStor)
		if err != nil {
			log.Fatal(err)
		}
		must(knn.SetArg(0, shortlists))
		must(knn.SetArg(1, dbs[i]))
		must(knn.SetArg(2, result))
		knn.SetWork(reach.Work{
			Stage: "Rerank",
			MACs:  m.RerankMACsPerBatch() / 4, StreamBytes: m.RerankScanBytesPerBatch() / 4,
			Random: true, OutputBytes: m.ResultBytesPerBatch() / 4,
		})
		knns = append(knns, knn)
	}

	if err := sys.Deploy(); err != nil {
		log.Fatal(err)
	}

	// ============== functional retrieval (runs beside the sim) ===========
	fmt.Println("building the functional IVF index (scaled dataset)...")
	ds := workload.Synthetic(workload.SyntheticParams{N: 1 << 15, D: 96, Clusters: 64, Spread: 0.08, Seed: 7})
	index, err := cbir.BuildIndex(ds.Vectors, 64, 25, 8)
	if err != nil {
		log.Fatal(err)
	}
	params := cbir.SearchParams{Probes: m.Probes, Candidates: 2048, K: m.TopK}

	// ======================= host.cpp (Listing 3) ========================
	fmt.Printf("streaming %d query batches through the hierarchy...\n", *batches)
	start := sys.Now()
	var jobs []*reach.Job
	var recallSum float64
	for b := 0; b < *batches; b++ {
		// while (Input.enqueue(new_query_batch)) { ... }
		job, err := sys.Begin()
		if err != nil {
			log.Fatal(err)
		}
		must(job.Enqueue(input))  // Input.enqueue(new_query_batch)
		must(job.Execute(cnnAcc)) // cnn.execute(threadId)
		must(job.Broadcast(features))
		for _, sl := range sls {
			must(job.Execute(sl)) // shortlist on every AIM module
		}
		for _, knn := range knns {
			must(job.Execute(knn)) // knn0.execute, knn1.execute, ...
		}
		must(job.Collect(result)) // Result.collect()
		must(job.Commit())
		jobs = append(jobs, job)

		// The functional layer answers the same batch with real math.
		queries := ds.Queries(m.BatchSize, 0.02, int64(100+b))
		recall, err := index.RecallAtK(queries, params)
		if err != nil {
			log.Fatal(err)
		}
		recallSum += recall
	}
	sys.Run()

	// ======================= results =====================================
	makespan := jobs[len(jobs)-1].FinishedAt() - start
	fmt.Printf("\nfirst batch latency : %v\n", jobs[0].Latency())
	fmt.Printf("steady-state period : %.1f ms/batch (pipelined by the GAM)\n",
		makespan.Seconds()*1000/float64(*batches))
	fmt.Printf("throughput          : %.2f batches/s, %.1f queries/s\n",
		float64(*batches)/makespan.Seconds(),
		float64(*batches*m.BatchSize)/makespan.Seconds())
	fmt.Printf("mean recall@%d       : %.3f (functional layer)\n", m.TopK, recallSum/float64(*batches))
	fmt.Println("\nenergy breakdown (J, whole run):")
	for comp, joules := range sys.Energy() {
		if joules > 0 {
			fmt.Printf("  %-20s %.2f\n", comp, joules)
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustStream(st *reach.Stream, err error) *reach.Stream {
	if err != nil {
		log.Fatal(err)
	}
	return st
}
