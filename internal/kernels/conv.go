package kernels

import (
	"fmt"
	"math"
)

// Tensor3 is a CHW (channel, height, width) float32 tensor — the activation
// layout of the CNN layers.
type Tensor3 struct {
	C, H, W int
	Data    []float32
}

// NewTensor3 allocates a zero tensor.
func NewTensor3(c, h, w int) *Tensor3 {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("kernels: invalid tensor shape %dx%dx%d", c, h, w))
	}
	return &Tensor3{C: c, H: h, W: w, Data: make([]float32, c*h*w)}
}

// At returns element (c, y, x).
func (t *Tensor3) At(c, y, x int) float32 { return t.Data[(c*t.H+y)*t.W+x] }

// Set stores element (c, y, x).
func (t *Tensor3) Set(c, y, x int, v float32) { t.Data[(c*t.H+y)*t.W+x] = v }

// Len reports the element count.
func (t *Tensor3) Len() int { return len(t.Data) }

// ConvParams holds a convolution layer's weights: OutC filters of shape
// InC×K×K plus one bias per filter.
type ConvParams struct {
	OutC, InC, K int
	Weights      []float32 // OutC × InC × K × K
	Bias         []float32 // OutC
}

// NewConvParams allocates zeroed parameters.
func NewConvParams(outC, inC, k int) *ConvParams {
	if outC <= 0 || inC <= 0 || k <= 0 {
		panic("kernels: invalid conv params")
	}
	return &ConvParams{
		OutC: outC, InC: inC, K: k,
		Weights: make([]float32, outC*inC*k*k),
		Bias:    make([]float32, outC),
	}
}

func (p *ConvParams) w(o, i, ky, kx int) float32 {
	return p.Weights[((o*p.InC+i)*p.K+ky)*p.K+kx]
}

// ParamCount reports the number of parameters (weights + biases).
func (p *ConvParams) ParamCount() int { return len(p.Weights) + len(p.Bias) }

// Conv2D applies a same-padded, stride-1 K×K convolution — the layer shape
// used throughout VGG (3×3, pad 1).
func Conv2D(in *Tensor3, p *ConvParams) *Tensor3 {
	if in.C != p.InC {
		panic(fmt.Sprintf("kernels: Conv2D channel mismatch %d vs %d", in.C, p.InC))
	}
	pad := p.K / 2
	out := NewTensor3(p.OutC, in.H, in.W)
	for o := 0; o < p.OutC; o++ {
		for y := 0; y < in.H; y++ {
			for x := 0; x < in.W; x++ {
				sum := p.Bias[o]
				for i := 0; i < p.InC; i++ {
					for ky := 0; ky < p.K; ky++ {
						sy := y + ky - pad
						if sy < 0 || sy >= in.H {
							continue
						}
						for kx := 0; kx < p.K; kx++ {
							sx := x + kx - pad
							if sx < 0 || sx >= in.W {
								continue
							}
							sum += in.At(i, sy, sx) * p.w(o, i, ky, kx)
						}
					}
				}
				out.Set(o, y, x, sum)
			}
		}
	}
	return out
}

// Conv2DMACs reports the multiply-accumulate count of a same-padded
// stride-1 convolution over an H×W input.
func Conv2DMACs(h, w, inC, outC, k int) float64 {
	return float64(h) * float64(w) * float64(inC) * float64(outC) * float64(k) * float64(k)
}

// ReLU applies max(0, x) in place and returns its argument.
func ReLU(t *Tensor3) *Tensor3 {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		}
	}
	return t
}

// MaxPool2x2 downsamples by 2 in both spatial dimensions taking window
// maxima. Odd trailing rows/columns are dropped (floor semantics), as in
// VGG.
func MaxPool2x2(in *Tensor3) *Tensor3 {
	oh, ow := in.H/2, in.W/2
	if oh == 0 || ow == 0 {
		panic("kernels: MaxPool2x2 input too small")
	}
	out := NewTensor3(in.C, oh, ow)
	for c := 0; c < in.C; c++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				m := float32(math.Inf(-1))
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						if v := in.At(c, 2*y+dy, 2*x+dx); v > m {
							m = v
						}
					}
				}
				out.Set(c, y, x, m)
			}
		}
	}
	return out
}

// FullyConnected computes y = W·x + b where W is out×in row-major.
func FullyConnected(x []float32, w *Matrix, bias []float32) []float32 {
	if w.Cols != len(x) || len(bias) != w.Rows {
		panic(fmt.Sprintf("kernels: FC shape mismatch W=%dx%d x=%d b=%d", w.Rows, w.Cols, len(x), len(bias)))
	}
	y := MatVec(w, x)
	for i := range y {
		y[i] += bias[i]
	}
	return y
}

// PCAProject projects v onto the rows of components (D_out × D_in) after
// subtracting mean — the dimensionality compression to D=96 the case study
// applies to CNN features.
func PCAProject(v, mean []float32, components *Matrix) []float32 {
	if len(v) != len(mean) || components.Cols != len(v) {
		panic("kernels: PCAProject shape mismatch")
	}
	centered := make([]float32, len(v))
	for i := range v {
		centered[i] = v[i] - mean[i]
	}
	return MatVec(components, centered)
}

// L2Normalize scales v to unit Euclidean norm in place (no-op for the zero
// vector) and returns it.
func L2Normalize(v []float32) []float32 {
	n := float64(SquaredNorm(v))
	if n == 0 {
		return v
	}
	inv := float32(1 / math.Sqrt(n))
	for i := range v {
		v[i] *= inv
	}
	return v
}
