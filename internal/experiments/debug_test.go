package experiments

import (
	"os"
	"testing"

	"repro/internal/workload"
)

// TestDebugDump prints the main figures when -v is set; it never fails.
// Kept as a diagnostic aid for calibration work.
func TestDebugDump(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("run with -v for the dump")
	}
	m := workload.DefaultModel()
	if r, err := Fig12(m); err == nil {
		r.Table().Render(os.Stdout)
	} else {
		t.Log(err)
	}
	if r, err := Fig13(m); err == nil {
		r.Table().Render(os.Stdout)
		for i, c := range r.Cells {
			t.Logf("%s: tput=%.3f b/s lat=%v energy=%.1fJ", c.Option.Name, c.Throughput, c.Latency, c.TotalEnergyJ)
			_ = i
		}
	} else {
		t.Log(err)
	}
}
