package main

import (
	"encoding/json"
	"os"
	"sort"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func TestRunAllExperimentIDs(t *testing.T) {
	cfg := config.Default()
	m := workload.DefaultModel()
	for _, id := range experimentIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			tables, err := run(id, cfg, m)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", id)
			}
			var sb strings.Builder
			for _, tb := range tables {
				if err := tb.Render(&sb); err != nil {
					t.Fatal(err)
				}
				if err := tb.CSV(&sb); err != nil {
					t.Fatal(err)
				}
			}
			if sb.Len() == 0 {
				t.Fatalf("%s rendered empty output", id)
			}
		})
	}
}

// TestListOutputGolden pins the -list contract: every registered id, one
// per line, in sorted order. Scripts parse this.
func TestListOutputGolden(t *testing.T) {
	const want = `ablation-gam
ablation-granularity
ablation-mapping
ablation-nsbuffer
fig10
fig11
fig12
fig13
fig8
fig9
loadsweep
motivation
multitenant
recallsweep
reverselookup
skew
table1
table2
table3
table4
`
	ids := append([]string(nil), experimentIDs...)
	sort.Strings(ids)
	got := strings.Join(ids, "\n") + "\n"
	if got != want {
		t.Errorf("-list output changed:\ngot:\n%swant:\n%s", got, want)
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := run("nonsense", config.Default(), workload.DefaultModel()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestWriteTrace(t *testing.T) {
	path := t.TempDir() + "/trace.json"
	if err := writeTrace(path, nil, ""); err != nil {
		t.Fatal(err)
	}
}

// TestWriteTraceWithMetrics exercises the instrumented trace path: counter
// lanes and GAM spans merged into the timeline, plus the raw CSV dump.
func TestWriteTraceWithMetrics(t *testing.T) {
	dir := t.TempDir()
	tracePath := dir + "/trace.json"
	csvPath := dir + "/metrics.csv"
	if err := writeTrace(tracePath, &metrics.Options{Spans: true}, csvPath); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace is not valid Chrome-trace JSON: %v", err)
	}
	var counters, spans int
	for _, e := range events {
		switch e["ph"] {
		case "C":
			counters++
		case "X":
			if cat, _ := e["cat"].(string); strings.HasPrefix(cat, "gam.") {
				spans++
			}
		}
	}
	if counters == 0 {
		t.Error("no counter events merged into trace")
	}
	if spans == 0 {
		t.Error("no GAM spans merged into trace")
	}
	if _, err := os.Stat(csvPath); err != nil {
		t.Errorf("metrics CSV not written: %v", err)
	}
}
