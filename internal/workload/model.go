// Package workload defines the CBIR case-study workload at two coupled
// scales:
//
//   - the modelled (full) scale of the paper — a billion-vector database,
//     224×224 query images, VGG16 feature extraction — which drives the
//     timing and energy layers (Table I byte and op counts);
//   - the functional scale — a deterministic synthetic dataset small
//     enough to run real k-means, GeMM and KNN in tests — which drives the
//     simulator's functional layer and the recall evaluation.
package workload

import (
	"fmt"

	"repro/internal/cnn"
)

// Model captures the full-scale workload parameters (paper §IV, §V "CBIR
// setup").
type Model struct {
	// BatchSize is the query batch (paper: 16).
	BatchSize int
	// Dim is the feature dimensionality after PCA (paper: 96).
	Dim int
	// Centroids is the number of k-means clusters (paper: 1000).
	Centroids int
	// DatasetSize is the database cardinality (paper: 10⁹).
	DatasetSize int64
	// RerankCandidates is the candidate-list size per query (paper: 4096).
	RerankCandidates int
	// TopK is the number of results returned per query.
	TopK int
	// Probes is the number of shortlisted clusters traversed per query.
	Probes int
	// ScanFraction is the fraction of each probed cluster's feature data
	// the rerank accelerator streams to collect and score its candidates.
	// Candidates are scattered through the cluster's pages, so the gather
	// reads far more than RerankCandidates × VectorBytes; 5 % of each
	// probed cluster reproduces the storage-traffic dominance of the
	// paper's Fig. 8 (see DESIGN.md §4).
	ScanFraction float64
	// ImageH/ImageW/ImageC is the query image geometry (224×224×3).
	ImageH, ImageW, ImageC int
	// CellInfoBytesPerPoint is the per-point inverted-index metadata
	// (compressed IDs + residual info); together with the centroid matrix
	// it forms Table I's "~2.2 GB centroids and cell info".
	CellInfoBytesPerPoint float64
	// CNN is the feature-extraction network at modelled scale.
	CNN *cnn.Spec
}

// DefaultModel returns the paper's configuration.
func DefaultModel() Model {
	return Model{
		BatchSize:             16,
		Dim:                   96,
		Centroids:             1000,
		DatasetSize:           1_000_000_000,
		RerankCandidates:      4096,
		TopK:                  10,
		Probes:                8,
		ScanFraction:          0.05,
		ImageH:                224,
		ImageW:                224,
		ImageC:                3,
		CellInfoBytesPerPoint: 2.2,
		CNN:                   cnn.VGG16(),
	}
}

// Validate checks internal consistency.
func (m Model) Validate() error {
	switch {
	case m.BatchSize <= 0:
		return fmt.Errorf("workload: batch size must be positive")
	case m.Dim <= 0:
		return fmt.Errorf("workload: dim must be positive")
	case m.Centroids <= 0:
		return fmt.Errorf("workload: centroid count must be positive")
	case m.DatasetSize <= 0:
		return fmt.Errorf("workload: dataset size must be positive")
	case m.Probes <= 0 || m.Probes > m.Centroids:
		return fmt.Errorf("workload: probes must be in [1, centroids]")
	case m.ScanFraction <= 0 || m.ScanFraction > 1:
		return fmt.Errorf("workload: scan fraction must be in (0,1]")
	case m.RerankCandidates <= 0 || m.TopK <= 0 || m.TopK > m.RerankCandidates:
		return fmt.Errorf("workload: need 1 <= topK <= rerank candidates")
	case m.CNN == nil:
		return fmt.Errorf("workload: missing CNN spec")
	}
	return nil
}

// VectorBytes is the storage of one feature vector (float32).
func (m Model) VectorBytes() int64 { return int64(m.Dim) * 4 }

// ImageBytes is the size of one query image.
func (m Model) ImageBytes() int64 {
	return int64(m.ImageH) * int64(m.ImageW) * int64(m.ImageC)
}

// BatchImageBytes is the host→chip input traffic of one batch.
func (m Model) BatchImageBytes() int64 { return m.ImageBytes() * int64(m.BatchSize) }

// BatchFeatureBytes is the feature-vector traffic of one batch (the only
// inter-level payload after feature extraction — the paper's "only data
// movement required is the user query vector and retrieved short-list").
func (m Model) BatchFeatureBytes() int64 { return m.VectorBytes() * int64(m.BatchSize) }

// FeatureStoreBytes is the database feature store (Table I: ~355 GB for
// 1 B vectors).
func (m Model) FeatureStoreBytes() int64 { return m.DatasetSize * m.VectorBytes() }

// ClusterBytes is one cluster's share of the feature store.
func (m Model) ClusterBytes() int64 {
	return m.FeatureStoreBytes() / int64(m.Centroids)
}

// CentroidStoreBytes is the shortlist working set: the columnar centroid
// matrix, the precomputed ‖C_m‖² vector, and the per-point cell metadata
// (Table I: ~2.2 GB).
func (m Model) CentroidStoreBytes() int64 {
	centroidMatrix := int64(m.Centroids) * m.VectorBytes()
	norms := int64(m.Centroids) * 4
	cellInfo := int64(float64(m.DatasetSize) * m.CellInfoBytesPerPoint)
	return centroidMatrix + norms + cellInfo
}

// ShortlistScanBytesPerBatch is the data streamed by the shortlist stage
// per batch: the centroid matrix for the GeMM plus the cell metadata scan
// that assembles candidate lists.
func (m Model) ShortlistScanBytesPerBatch() int64 { return m.CentroidStoreBytes() }

// RerankScanBytesPerQuery is the storage traffic of one query's rerank:
// Probes clusters × ScanFraction of each.
func (m Model) RerankScanBytesPerQuery() int64 {
	return int64(float64(m.Probes) * m.ScanFraction * float64(m.ClusterBytes()))
}

// RerankScanBytesPerBatch is the batch aggregate.
func (m Model) RerankScanBytesPerBatch() int64 {
	return m.RerankScanBytesPerQuery() * int64(m.BatchSize)
}

// FeatureMACsPerImage is the CNN cost of one image.
func (m Model) FeatureMACsPerImage() float64 { return m.CNN.TotalMACs() }

// FeatureMACsPerBatch is the CNN cost of one batch.
func (m Model) FeatureMACsPerBatch() float64 {
	return m.FeatureMACsPerImage() * float64(m.BatchSize)
}

// ShortlistMACsPerBatch is the B×D×M GeMM plus the norm additions (Eq. 1).
func (m Model) ShortlistMACsPerBatch() float64 {
	gemm := float64(m.BatchSize) * float64(m.Dim) * float64(m.Centroids)
	adds := float64(m.BatchSize) * float64(m.Centroids)
	return gemm + adds
}

// RerankMACsPerQuery is the distance evaluation over the scanned points
// (Eq. 2): every streamed vector is scored.
func (m Model) RerankMACsPerQuery() float64 {
	scanned := float64(m.RerankScanBytesPerQuery()) / float64(m.VectorBytes())
	return scanned * float64(m.Dim)
}

// RerankMACsPerBatch is the batch aggregate.
func (m Model) RerankMACsPerBatch() float64 {
	return m.RerankMACsPerQuery() * float64(m.BatchSize)
}

// ShortlistResultBytesPerBatch is the shortlist→rerank payload: per query,
// Probes cluster IDs and their candidate descriptors.
func (m Model) ShortlistResultBytesPerBatch() int64 {
	perQuery := int64(m.Probes)*8 + m.VectorBytes()
	return perQuery * int64(m.BatchSize)
}

// ResultBytesPerBatch is the rerank→host payload (top-K ids + distances).
func (m Model) ResultBytesPerBatch() int64 {
	return int64(m.TopK) * 8 * int64(m.BatchSize)
}
