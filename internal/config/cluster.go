package config

import (
	"encoding/json"
	"fmt"
	"os"
)

// ClusterConfig describes a datacenter deployment of N ReACH servers
// behind a front-end tier: the shortlist database sharded (with
// replication) across the nodes, queries scattered to one replica per
// shard over an inter-node network and gathered back at the front end.
// The per-node hardware is an ordinary SystemConfig.
type ClusterConfig struct {
	// Nodes is the number of ReACH servers.
	Nodes int `json:"nodes"`
	// Shards is the number of database shards. Every query consults every
	// shard (scatter-gather); each shard lives on Replication nodes.
	Shards int `json:"shards"`
	// Replication is the number of nodes holding a copy of each shard.
	// Ignored when ShardMap is set explicitly.
	Replication int `json:"replication"`
	// ShardMap, when non-nil, assigns each shard its replica nodes
	// explicitly: ShardMap[s] lists the node indices holding shard s.
	// When nil the map is derived: shard s's k-th replica lives on node
	// (s+k) mod Nodes.
	ShardMap [][]int `json:"shard_map,omitempty"`

	// NetGBps is the inter-node network bandwidth per node and direction
	// (one ingress and one egress link per node, built from sim.Link).
	NetGBps float64 `json:"net_gbps"`
	// NetLatencyUS is the fixed one-way network latency in microseconds.
	NetLatencyUS float64 `json:"net_latency_us"`

	// RoutePolicy selects how the front end picks a replica for each
	// (query, shard): "hash" (replica index by query hash — affinity
	// routing), "rr" (round robin), or "p2c" (power of two choices:
	// least-loaded of two sampled replicas).
	RoutePolicy string `json:"route_policy"`
	// RouteSeed seeds the router's choice sampling (p2c).
	RouteSeed int64 `json:"route_seed"`

	// Quorum is how many shard responses complete a query; 0 means all
	// shards (the default scatter-gather merge).
	Quorum int `json:"quorum"`

	// SkewExponent shapes the per-query Zipf skew of shard work: a query's
	// rerank candidates concentrate in a few clusters, so one shard's
	// share of its work is much larger than the others'. 0 is uniform.
	SkewExponent float64 `json:"skew_exponent"`

	// ContentItems is the size of the query-popularity universe: each
	// arriving query is one of this many distinct "contents", drawn Zipf by
	// SkewExponent. Hash routing keys on the content, popular contents pin
	// their load to one replica index, and the front-end result cache keys
	// on it — so the ratio of ContentItems to CacheEntries sets the
	// working-set-vs-capacity contest the cache sweep measures.
	ContentItems int `json:"content_items"`

	// CacheEntries is the capacity of the front-end result cache: an LRU
	// over content keys consulted before every scatter. 0 disables the
	// cache and the in-flight coalescing layer entirely — the query path is
	// then byte-identical to a build without the cache.
	CacheEntries int `json:"cache_entries,omitempty"`
	// CacheTTLMS is the freshness TTL of a cached result in simulated
	// milliseconds: an entry whose age has reached the TTL is expired (the
	// boundary itself is stale) and the query scatters as a miss. Must be
	// positive when CacheEntries > 0.
	CacheTTLMS float64 `json:"cache_ttl_ms,omitempty"`
	// CacheHitUS is the front-end latency in microseconds to serve a cache
	// hit (lookup plus response assembly) — the whole latency of a hit
	// query, since it never leaves the front-end tier.
	CacheHitUS float64 `json:"cache_hit_us,omitempty"`
	// CoalesceUS is the attach latency in microseconds for a coalesced
	// query: a query arriving while a scatter for the same content is in
	// flight completes this long after that scatter's merge.
	CoalesceUS float64 `json:"coalesce_us,omitempty"`

	// ParallelDomains is how many worker goroutines execute the cluster's
	// event domains (one per node plus the front end) each synchronization
	// round; 0 or 1 runs the partition serially. Purely a wall-clock knob:
	// simulation output is byte-identical at any value.
	ParallelDomains int `json:"parallel_domains,omitempty"`

	// Node is the per-server hardware configuration.
	Node SystemConfig `json:"node"`
}

// RoutePolicies lists the recognised routing policies.
func RoutePolicies() []string { return []string{"hash", "rr", "p2c"} }

// DefaultCluster returns a 4-node deployment: one shard per node,
// 2-way replication, a 10 GB/s / 10 µs inter-node fabric, power-of-two
// routing, and a modest per-node instance population (the cluster's
// throughput comes from scale-out, not from maxing every server).
func DefaultCluster() ClusterConfig {
	return ClusterConfig{
		Nodes:           4,
		Shards:          4,
		Replication:     2,
		NetGBps:         10.0,
		NetLatencyUS:    10.0,
		RoutePolicy:     "p2c",
		RouteSeed:       1,
		SkewExponent:    1.0,
		ContentItems:    64,
		CacheEntries:    0, // cache off by default; the pinned goldens predate it
		CacheTTLMS:      500,
		CacheHitUS:      50,
		CoalesceUS:      20,
		ParallelDomains: 1,
		Node:            Default().WithInstances(1, 2, 2),
	}
}

// ReplicaNodes returns shard s's replica node indices under the explicit
// map when set, or the derived (s+k) mod Nodes placement. Call Validate
// first; ReplicaNodes assumes a consistent configuration.
func (c *ClusterConfig) ReplicaNodes(s int) []int {
	if c.ShardMap != nil {
		return c.ShardMap[s]
	}
	r := c.Replication
	if r < 1 {
		r = 1
	}
	if r > c.Nodes {
		r = c.Nodes
	}
	out := make([]int, r)
	for k := 0; k < r; k++ {
		out[k] = (s + k) % c.Nodes
	}
	return out
}

// Validate checks cluster-level consistency — naming the offending entry,
// so a bad hand-written shard map points at itself — and then validates
// the per-node hardware.
func (c *ClusterConfig) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("cluster: nodes must be >= 1, got %d", c.Nodes)
	}
	if c.Shards < 1 {
		return fmt.Errorf("cluster: shards must be >= 1, got %d", c.Shards)
	}
	if c.ShardMap == nil {
		if c.Replication < 1 {
			return fmt.Errorf("cluster: replication must be >= 1, got %d", c.Replication)
		}
		if c.Replication > c.Nodes {
			return fmt.Errorf("cluster: replication %d exceeds node count %d", c.Replication, c.Nodes)
		}
	} else {
		if len(c.ShardMap) != c.Shards {
			return fmt.Errorf("cluster: shard_map covers %d shards, config declares %d",
				len(c.ShardMap), c.Shards)
		}
		for s, replicas := range c.ShardMap {
			if len(replicas) == 0 {
				return fmt.Errorf("cluster: shard %d has no replica nodes assigned", s)
			}
			seen := make(map[int]bool, len(replicas))
			for k, n := range replicas {
				if n < 0 || n >= c.Nodes {
					return fmt.Errorf("cluster: shard %d replica %d assigned to node %d, valid nodes are 0..%d",
						s, k, n, c.Nodes-1)
				}
				if seen[n] {
					return fmt.Errorf("cluster: shard %d lists node %d twice", s, n)
				}
				seen[n] = true
			}
		}
	}
	if c.Quorum < 0 || c.Quorum > c.Shards {
		return fmt.Errorf("cluster: quorum %d out of range 0..%d (0 means all shards)", c.Quorum, c.Shards)
	}
	if c.NetGBps <= 0 {
		return fmt.Errorf("cluster: net_gbps must be positive, got %v", c.NetGBps)
	}
	if c.NetLatencyUS <= 0 {
		// Strictly positive: the wire latency is the conservative lookahead
		// that lets the per-node event domains run in parallel.
		return fmt.Errorf("cluster: net_latency_us must be positive, got %v", c.NetLatencyUS)
	}
	if c.ParallelDomains < 0 {
		return fmt.Errorf("cluster: parallel_domains must be non-negative, got %d", c.ParallelDomains)
	}
	switch c.RoutePolicy {
	case "hash", "rr", "p2c":
	default:
		return fmt.Errorf("cluster: unknown route_policy %q (valid: hash, rr, p2c)", c.RoutePolicy)
	}
	if c.SkewExponent < 0 {
		return fmt.Errorf("cluster: skew_exponent must be non-negative, got %v", c.SkewExponent)
	}
	if c.ContentItems < 1 {
		return fmt.Errorf("cluster: content_items must be >= 1, got %d", c.ContentItems)
	}
	if c.CacheEntries < 0 {
		return fmt.Errorf("cluster: cache_entries must be non-negative, got %d", c.CacheEntries)
	}
	if c.CacheEntries > 0 && c.CacheTTLMS <= 0 {
		return fmt.Errorf("cluster: cache_ttl_ms must be positive when the cache is enabled, got %v", c.CacheTTLMS)
	}
	if c.CacheHitUS < 0 {
		return fmt.Errorf("cluster: cache_hit_us must be non-negative, got %v", c.CacheHitUS)
	}
	if c.CoalesceUS < 0 {
		return fmt.Errorf("cluster: coalesce_us must be non-negative, got %v", c.CoalesceUS)
	}
	if err := c.Node.Validate(); err != nil {
		return fmt.Errorf("cluster: node config: %w", err)
	}
	return nil
}

// LoadCluster reads a ClusterConfig from a JSON file.
func LoadCluster(path string) (ClusterConfig, error) {
	var c ClusterConfig
	data, err := os.ReadFile(path)
	if err != nil {
		return c, fmt.Errorf("config: %w", err)
	}
	if err := json.Unmarshal(data, &c); err != nil {
		return c, fmt.Errorf("config: parsing %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return c, fmt.Errorf("config: %s: %w", path, err)
	}
	return c, nil
}

// SaveCluster writes the configuration as indented JSON.
func (c ClusterConfig) SaveCluster(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
