package experiments

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// smallClusterSweep is the reduced matrix the unit tests run: 4 nodes,
// the two policies under comparison, two rates, half the queries.
func smallClusterSweep(t *testing.T, opts ...Option) *ClusterSweepResult {
	t.Helper()
	res, err := ClusterSweep(workload.DefaultModel(), config.DefaultCluster(),
		[]int{4}, []string{"hash", "p2c"}, []float64{5, 20}, 32, DefaultClusterSeed, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestClusterSweepShape(t *testing.T) {
	res := smallClusterSweep(t)
	if len(res.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Completed != 32 {
			t.Fatalf("%dn %s %.0f q/s completed %d of 32", p.Nodes, p.Policy, p.OfferedQPS, p.Completed)
		}
		if p.P99 < p.P50 || p.P999 < p.P99 {
			t.Fatalf("quantiles out of order at %dn %s %.0f q/s", p.Nodes, p.Policy, p.OfferedQPS)
		}
		if len(p.NodeBusyPct) != p.Nodes || p.MeanBusyPct <= 0 {
			t.Fatalf("busy stats missing at %dn %s %.0f q/s", p.Nodes, p.Policy, p.OfferedQPS)
		}
		if p.RoutedImbalance < 1 || p.PeakQueueImbalance < 1 {
			t.Fatalf("imbalance below 1 at %dn %s %.0f q/s", p.Nodes, p.Policy, p.OfferedQPS)
		}
	}
}

// TestClusterSweepP2CBeatsHashAtPeak pins the acceptance criterion: in
// the default pinned sweep, p2c's p99 is no worse than hash's at the
// highest swept rate on the largest cluster.
func TestClusterSweepP2CBeatsHashAtPeak(t *testing.T) {
	res, err := DefaultClusterSweep(workload.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	rates := DefaultClusterRates()
	maxRate := rates[len(rates)-1]
	counts := DefaultClusterNodeCounts()
	maxNodes := counts[len(counts)-1]
	hash := res.Point(maxNodes, "hash", maxRate)
	p2c := res.Point(maxNodes, "p2c", maxRate)
	if hash == nil || p2c == nil {
		t.Fatal("pinned sweep missing hash/p2c points")
	}
	t.Logf("%d nodes at %.0f q/s: hash p99 %.1f ms, p2c p99 %.1f ms",
		maxNodes, maxRate, hash.P99.Milliseconds(), p2c.P99.Milliseconds())
	if p2c.P99 > hash.P99 {
		t.Fatalf("p2c p99 %v exceeds hash p99 %v at the highest swept rate",
			p2c.P99, hash.P99)
	}
}

// TestClusterSweepWorkerCountInvariant: the rendered table is
// byte-identical whether the sweep runs serially or on 8 workers.
func TestClusterSweepWorkerCountInvariant(t *testing.T) {
	render := func(opts ...Option) string {
		var b strings.Builder
		if err := ClusterSweepTable(smallClusterSweep(t, opts...)).Render(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	serial := render(WithWorkers(1))
	parallel := render(WithWorkers(8))
	if serial != parallel {
		t.Fatalf("cluster sweep differs by worker count:\n-- j1 --\n%s\n-- j8 --\n%s", serial, parallel)
	}
}

// TestClusterSweepParallelDomainsInvariant: the rendered table is
// byte-identical whether each cluster simulates its domains serially or
// on 4 worker goroutines. Together with the worker-count invariant above
// this pins that neither parallelism axis (-j across cells, -pj inside a
// cell) is a modelling knob.
func TestClusterSweepParallelDomainsInvariant(t *testing.T) {
	render := func(opts ...Option) string {
		var b strings.Builder
		if err := ClusterSweepTable(smallClusterSweep(t, opts...)).Render(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	serial := render(WithClusterParallel(1))
	parallel := render(WithClusterParallel(4))
	if serial != parallel {
		t.Fatalf("cluster sweep differs by ParallelDomains:\n-- pj1 --\n%s\n-- pj4 --\n%s", serial, parallel)
	}
}

func TestClusterSweepTableRenders(t *testing.T) {
	var b strings.Builder
	if err := ClusterSweepTable(smallClusterSweep(t)).Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Nodes", "p2c", "hash", "p99 ms", "peak-q imbal"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
