package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/accel"
	"repro/internal/config"
	"repro/internal/storage"
)

// buildRandomJob creates a job with `n` tasks whose dependencies only point
// backwards (guaranteeing a DAG) across random levels with random work.
func buildRandomJob(t *testing.T, s *System, id int, rng *rand.Rand, n int) *Job {
	t.Helper()
	j := NewJob(id)
	kernels := map[accel.Level][]string{
		accel.OnChip:      {"CNN-VU9P", "GEMM-VU9P", "KNN-VU9P"},
		accel.NearMemory:  {"CNN-ZCU9", "GEMM-ZCU9", "KNN-ZCU9"},
		accel.NearStorage: {"CNN-ZCU9", "GEMM-ZCU9", "KNN-ZCU9"},
	}
	levels := []accel.Level{accel.OnChip, accel.NearMemory, accel.NearStorage}
	var nodes []*TaskNode
	for i := 0; i < n; i++ {
		level := levels[rng.Intn(len(levels))]
		names := kernels[level]
		kname := names[rng.Intn(len(names))]
		k, err := s.Registry().Lookup(kname)
		if err != nil {
			t.Fatal(err)
		}
		var deps []*TaskNode
		for _, prev := range nodes {
			if rng.Float64() < 0.25 {
				deps = append(deps, prev)
			}
		}
		var src accel.Source
		switch level {
		case accel.OnChip:
			src = []accel.Source{accel.SourceSPM, accel.SourceHostDRAM, accel.SourceSSD}[rng.Intn(3)]
		case accel.NearMemory:
			src = []accel.Source{accel.SourceSPM, accel.SourceLocalDIMM, accel.SourceHostDRAM, accel.SourceSSD}[rng.Intn(4)]
		default:
			src = []accel.Source{accel.SourceSPM, accel.SourceSSD, accel.SourceDeviceDRAM}[rng.Intn(3)]
		}
		node := j.AddTask(accel.Task{
			Name:    "t",
			Stage:   "prop",
			Kernel:  k,
			MACs:    float64(rng.Intn(1_000_000_000)),
			Bytes:   int64(rng.Intn(50_000_000)),
			Source:  src,
			Pattern: storage.AccessPattern(rng.Intn(2)),
		}, level, deps...)
		if rng.Float64() < 0.3 {
			node.Pin = rng.Intn(s.InstanceCount(level))
		}
		node.OutBytes = int64(rng.Intn(100_000))
		if rng.Float64() < 0.2 {
			node.SinkToHost = true
		}
		nodes = append(nodes, node)
	}
	return j
}

// TestGAMRandomDAGs is the core scheduler property test: for arbitrary
// task DAGs across all three levels, every job completes; every node's
// timeline is causally ordered; dependencies are respected; and no
// accelerator instance ever runs two tasks at once.
func TestGAMRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := NewSystem(config.Default().WithInstances(1, 2+rng.Intn(3), 2+rng.Intn(3)))
		if err != nil {
			t.Fatal(err)
		}
		nJobs := 1 + rng.Intn(4)
		var jobs []*Job
		for id := 0; id < nJobs; id++ {
			j := buildRandomJob(t, s, id, rng, 1+rng.Intn(10))
			if err := s.GAM().Submit(j); err != nil {
				t.Fatalf("seed %d: submit: %v", seed, err)
			}
			jobs = append(jobs, j)
		}
		s.Run()

		type span struct {
			instance string
			from, to int64
		}
		var spans []span
		for _, j := range jobs {
			if !j.Done() {
				t.Fatalf("seed %d: job %d incomplete", seed, j.ID)
			}
			for _, n := range j.Nodes {
				// Causal timeline.
				if !(n.ReadyAt <= n.DispatchedAt && n.DispatchedAt <= n.CompletedAt && n.CompletedAt <= n.DetectedAt) {
					t.Fatalf("seed %d: timeline violated: ready=%v disp=%v done=%v det=%v",
						seed, n.ReadyAt, n.DispatchedAt, n.CompletedAt, n.DetectedAt)
				}
				// Dependencies: every dependent dispatched after this
				// node's detection.
				for _, dep := range n.dependents {
					if dep.DispatchedAt < n.DetectedAt {
						t.Fatalf("seed %d: dependent dispatched at %v before producer detected at %v",
							seed, dep.DispatchedAt, n.DetectedAt)
					}
				}
				spans = append(spans, span{n.Instance, int64(n.DispatchedAt), int64(n.CompletedAt)})
			}
		}
		// Exclusivity: per instance, execution windows may touch but not
		// overlap. (Dispatch happens a command-latency before execution
		// starts, so compare completion of one against dispatch of next.)
		byInst := map[string][]span{}
		for _, sp := range spans {
			byInst[sp.instance] = append(byInst[sp.instance], sp)
		}
		for inst, list := range byInst {
			sort.Slice(list, func(i, j int) bool { return list[i].from < list[j].from })
			for i := 1; i < len(list); i++ {
				if list[i].from < list[i-1].to {
					t.Fatalf("seed %d: instance %s double-booked: [%d,%d] overlaps [%d,%d]",
						seed, inst, list[i-1].from, list[i-1].to, list[i].from, list[i].to)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestGAMDeterminism: the same job stream produces bit-identical timing.
func TestGAMDeterminism(t *testing.T) {
	run := func() []int64 {
		s, err := NewSystem(config.Default())
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		var jobs []*Job
		for id := 0; id < 3; id++ {
			j := buildRandomJob(t, s, id, rng, 8)
			if err := s.GAM().Submit(j); err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
		s.Run()
		var times []int64
		for _, j := range jobs {
			times = append(times, int64(j.FinishedAt))
			for _, n := range j.Nodes {
				times = append(times, int64(n.DispatchedAt), int64(n.CompletedAt), int64(n.DetectedAt))
			}
		}
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different event counts across identical runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterminism at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
