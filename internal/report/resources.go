package report

import (
	"fmt"

	"repro/internal/sim"
)

// ResourceTable renders the central stats registry as one table: every
// shared resource (connection, stream buffer, request queue, window) that
// saw traffic, in sorted-name order, with the uniform base-layer counters.
// This is the single bottleneck-attribution view — no per-package stats
// plumbing.
func ResourceTable(reg *sim.StatsRegistry) *Table {
	t := &Table{
		Title:   "Shared resources",
		Columns: []string{"resource", "kind", "ops", "bytes", "busy_ms", "wait_ms", "stalls", "max_occ", "util"},
	}
	var skipped int
	reg.Walk(func(name string, res sim.Resource) {
		st := res.ResourceStats()
		if st.Ops == 0 && st.Stalls == 0 {
			skipped++
			return
		}
		t.AddRow(
			name,
			string(st.Kind),
			fmt.Sprintf("%d", st.Ops),
			fmt.Sprintf("%d", st.Bytes),
			Ms(st.Busy.Seconds()),
			Ms(st.Wait.Seconds()),
			fmt.Sprintf("%d", st.Stalls),
			fmt.Sprintf("%d", st.MaxOccupancy),
			F(st.Utilization, 3),
		)
	})
	if skipped > 0 {
		t.AddNote("%d idle resources omitted", skipped)
	}
	return t
}
