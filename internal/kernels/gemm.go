// Package kernels provides the functional implementations of the compute
// kernels the ReACH case study accelerates: dense matrix multiplication
// (shortlist retrieval), 2-D convolution / ReLU / max-pooling / fully
// connected layers (feature extraction), squared-Euclidean distance and
// partial top-K selection (shortlist retrieval and rerank), and PCA
// projection (feature compression).
//
// These run on real data in the simulator's functional layer — retrieval
// results and recall are computed, not faked — while the timing layer
// charges the corresponding modelled op/byte counts to the accelerator
// performance model.
package kernels

import "fmt"

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("kernels: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a matrix from row slices (all must share one length).
func FromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("kernels: FromRows with empty input")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("kernels: ragged row %d: %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set stores element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a shared slice.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// GeMM computes C = A × B. Inner loops are ordered i-k-j with a hoisted
// A(i,k) so the innermost loop streams both B and C rows sequentially —
// the same access pattern the tiled FPGA kernel uses.
func GeMM(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("kernels: GeMM shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range crow {
				crow[j] += aik * brow[j]
			}
		}
	}
	return c
}

// GeMMFLOPs reports the floating-point operations of C = A(m×k) × B(k×n):
// 2·m·k·n (one multiply + one add per MAC).
func GeMMFLOPs(m, k, n int) float64 {
	return 2 * float64(m) * float64(k) * float64(n)
}

// MatVec computes y = M × x.
func MatVec(m *Matrix, x []float32) []float32 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("kernels: MatVec shape mismatch %dx%d × %d", m.Rows, m.Cols, len(x)))
	}
	y := make([]float32, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var sum float32
		for j, v := range row {
			sum += v * x[j]
		}
		y[i] = sum
	}
	return y
}
