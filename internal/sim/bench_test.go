package sim

import "testing"

// BenchmarkEngineEvents measures raw event dispatch throughput — the
// simulator's fundamental cost unit.
func BenchmarkEngineEvents(b *testing.B) {
	e := NewEngine()
	var fire func()
	count := 0
	fire = func() {
		count++
		if count < b.N {
			e.Schedule(Nanosecond, fire)
		}
	}
	b.ResetTimer()
	e.Schedule(0, fire)
	e.Run()
}

// BenchmarkEngineFanOut measures heap behaviour with many pending events.
func BenchmarkEngineFanOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j%97)*Nanosecond, func() {})
		}
		e.Run()
	}
}

// BenchmarkLinkTransfers measures the contended-link fast path.
func BenchmarkLinkTransfers(b *testing.B) {
	e := NewEngine()
	l := NewLink(e, "bench", 1e9, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Transfer(4096)
	}
}

// BenchmarkTokenQueue measures the stream-buffer primitive.
func BenchmarkTokenQueue(b *testing.B) {
	e := NewEngine()
	q := NewTokenQueue(e, "bench", 8)
	sink := func(any) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Put(i, nil)
		q.Get(sink)
	}
}
