package cnn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kernels"
)

// testImages generates smooth deterministic images (the workload package
// cannot be imported here: it depends on cnn).
func testImages(n, size int, seed int64) []*kernels.Tensor3 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*kernels.Tensor3, n)
	for b := range out {
		img := kernels.NewTensor3(3, size, size)
		cx, cy := rng.Float64()*float64(size), rng.Float64()*float64(size)
		for i := range img.Data {
			c := i / (size * size)
			y := (i / size) % size
			x := i % size
			dx := (float64(x) - cx) / float64(size)
			dy := (float64(y) - cy) / float64(size)
			img.Data[i] = float32((0.5+float64(c)*0.2)/(1+8*(dx*dx+dy*dy))) +
				float32(rng.NormFloat64()*0.02)
		}
		out[b] = img
	}
	return out
}

func TestQuantizeRoundTrip(t *testing.T) {
	w := []float32{-1.0, -0.5, 0, 0.25, 0.999}
	q := Quantize(w)
	back := q.Dequantize()
	for i := range w {
		if d := math.Abs(float64(back[i] - w[i])); d > float64(q.Scale) {
			t.Errorf("weight %d: %v → %v (err %.4f > scale %v)", i, w[i], back[i], d, q.Scale)
		}
	}
	if q.Bytes() != int64(len(w))+4 {
		t.Errorf("bytes = %d", q.Bytes())
	}
}

func TestQuantizeZeroTensor(t *testing.T) {
	q := Quantize(make([]float32, 8))
	for _, v := range q.Dequantize() {
		if v != 0 {
			t.Fatal("zero tensor not preserved")
		}
	}
}

// Property: quantisation error is bounded by half a quantisation step per
// weight, and the int8 values stay in [-127, 127].
func TestQuantizeErrorBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := make([]float32, 64)
		for i := range w {
			w[i] = float32(rng.NormFloat64())
		}
		q := Quantize(w)
		for _, v := range q.Data {
			if v > 127 || v < -127 {
				return false
			}
		}
		halfStep := float64(q.Scale) * 0.51 // rounding slack
		for i, back := range q.Dequantize() {
			if math.Abs(float64(back-w[i])) > halfStep {
				return false
			}
		}
		return q.MeanSquaredError(w) <= halfStep*halfStep
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeNetworkCompressesAndPreservesFeatures(t *testing.T) {
	spec := MiniVGG(16, 32)
	net, err := NewNetwork(spec, 77)
	if err != nil {
		t.Fatal(err)
	}
	qnet, qbytes, err := QuantizeNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	// ~4x smaller than float32.
	floatBytes := spec.ParamBytes()
	ratio := float64(floatBytes) / float64(qbytes)
	if ratio < 3.5 || ratio > 4.1 {
		t.Errorf("compression = %.2fx, want ~4x for int8", ratio)
	}

	full := NewFeatureExtractor(net, 16, 5)
	quant := NewFeatureExtractor(qnet, 16, 5)
	images := testImages(6, 16, 9)
	drift, err := FeatureDrift(full, quant, images)
	if err != nil {
		t.Fatal(err)
	}
	// Unit-norm features: drift must be small but nonzero.
	if drift <= 0 {
		t.Error("quantisation produced zero drift; suspicious")
	}
	if drift > 0.5 {
		t.Errorf("feature drift = %.3f, int8 should preserve features (< 0.5)", drift)
	}
	// The drift must be far below the distance between unrelated features.
	a, _ := full.Extract(images[0])
	b, _ := full.Extract(images[1])
	unrelated := math.Sqrt(float64(kernels.SquaredL2(a, b)))
	if drift >= unrelated/2 {
		t.Errorf("drift %.3f not well below unrelated distance %.3f", drift, unrelated)
	}
}

func TestFeatureDriftValidation(t *testing.T) {
	net, _ := NewNetwork(MiniVGG(16, 8), 1)
	fe := NewFeatureExtractor(net, 8, 2)
	if _, err := FeatureDrift(fe, fe, nil); err == nil {
		t.Error("empty image set accepted")
	}
}
