package experiments

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// StageRL labels the reverse-lookup stage.
const StageRL = "ReverseLookup"

// ReverseLookupResult quantifies the paper's decision to exclude the final
// reverse-lookup stage from its experiments ("due to its huge storage
// requirements", §IV-B): the stage needs a 200 TB–2 PB image store, but
// its online cost is a K-image gather per query — tiny next to the rerank
// scan. The experiment runs the ReACH pipeline with and without a fourth
// stage that fetches the top-K images from the (modelled) image store and
// reports the marginal cost.
type ReverseLookupResult struct {
	ImageBytes       int64 // mean stored image size
	FetchPerBatch    int64
	BaseThroughput   float64
	WithRLThroughput float64
	BaseLatency      sim.Time
	WithRLLatency    sim.Time
}

// reverseLookupSpecs is the run matrix: the paper's three-stage pipeline,
// then the same pipeline with the reverse-lookup stage chained behind the
// rerank nodes.
func reverseLookupSpecs(m workload.Model, imageBytes int64, batches int) []RunSpec {
	base := PipelineSpec("reverselookup base", m, ReACHMapping(), 4, batches)
	base.Background = BackgroundNone
	with := RunSpec{
		Name:      "reverselookup with-rl",
		Model:     m,
		Mapping:   ReACHMapping(),
		Instances: 4,
		Batches:   batches,
		BuildJob: func(sys *core.System, id int) (*core.Job, error) {
			return buildReverseLookupJob(sys, id, m, imageBytes)
		},
	}
	return []RunSpec{base, with}
}

// buildReverseLookupJob is BuildPipelineJob with a fourth stage: the RR
// nodes no longer sink to the host; instead the reverse lookup gathers the
// top-K images (page-granular) from the image store striped over the SSDs,
// then returns the images to the host.
func buildReverseLookupJob(sys *core.System, id int, m workload.Model, imageBytes int64) (*core.Job, error) {
	knn, err := sys.Registry().Lookup("KNN-ZCU9")
	if err != nil {
		return nil, err
	}
	j, err := BuildPipelineJob(sys, id, m, ReACHMapping())
	if err != nil {
		return nil, err
	}
	var rrNodes []*core.TaskNode
	for _, n := range j.Nodes {
		if n.Spec.Stage == StageRR {
			n.SinkToHost = false
			rrNodes = append(rrNodes, n)
		}
	}
	perInstance := int64(m.TopK) * imageBytes * int64(m.BatchSize) / 4
	for i := 0; i < 4; i++ {
		rl := j.AddTask(accel.Task{
			Name: fmt.Sprintf("rl%d", i), Stage: StageRL, Kernel: knn,
			MACs:   1, // database access: negligible compute (Table I "very low")
			Bytes:  perInstance,
			Source: accel.SourceSSD, Pattern: storage.RandomPages,
		}, accel.NearStorage, rrNodes...)
		rl.Pin = i
		rl.OutBytes = perInstance // the images themselves go to the host
		rl.SinkToHost = true
	}
	return j, nil
}

// ReverseLookup runs the comparison. Images average 200 KB (the paper's
// 200 TB bound for a billion images).
func ReverseLookup(m workload.Model, opts ...Option) (*ReverseLookupResult, error) {
	const imageBytes = 200 << 10
	fetch := int64(m.TopK) * imageBytes * int64(m.BatchSize)

	runs, err := RunSpecs(reverseLookupSpecs(m, imageBytes, 6), opts...)
	if err != nil {
		return nil, err
	}
	base, with := runs[0], runs[1]
	return &ReverseLookupResult{
		ImageBytes:       imageBytes,
		FetchPerBatch:    fetch,
		BaseThroughput:   base.ThroughputBatchesPerSec(),
		WithRLThroughput: with.ThroughputBatchesPerSec(),
		BaseLatency:      base.Latency,
		WithRLLatency:    with.Latency,
	}, nil
}

// ThroughputCost reports the fractional throughput lost to the stage.
func (r *ReverseLookupResult) ThroughputCost() float64 {
	return 1 - r.WithRLThroughput/r.BaseThroughput
}

// Table renders the comparison.
func (r *ReverseLookupResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Appendix — reverse lookup stage (excluded by the paper; marginal cost)",
		Columns: []string{"Pipeline", "Batches/s", "Latency ms"},
	}
	t.AddRow("FE-SL-RR (paper's experiments)", report.F(r.BaseThroughput, 2),
		report.F(r.BaseLatency.Milliseconds(), 1))
	t.AddRow("FE-SL-RR-RL (with image fetch)", report.F(r.WithRLThroughput, 2),
		report.F(r.WithRLLatency.Milliseconds(), 1))
	t.AddNote("image store: %d KB/image ⇒ %d MB fetched per batch; throughput cost %s",
		r.ImageBytes>>10, r.FetchPerBatch>>20, report.Pct(r.ThroughputCost()))
	t.AddNote("the stage's burden is the 200 TB-2 PB capacity, not the online traffic — the paper's exclusion is sound")
	return t
}
