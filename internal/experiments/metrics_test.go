package experiments

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestBottleneckNamesAIMbusWhenInterleaved is the observability layer's
// acceptance check: for the near-memory shortlist stage with the database
// interleaved across DIMMs, nearly the whole scan crosses the shared
// 12.8 GB/s AIMbus, and the bottleneck-attribution report must say so.
func TestBottleneckNamesAIMbusWhenInterleaved(t *testing.T) {
	spec, err := NearMemInterleavedSpec(4, workload.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	spec.Metrics = &metrics.Options{Spans: true}
	run, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.Obs == nil || run.Obs.Sampler.Samples() == 0 {
		t.Fatal("run was not sampled")
	}
	atts := metrics.Attribute(run.Obs.Sampler, run.PhaseWindows())
	var found bool
	for _, a := range atts {
		if a.Phase != "run" {
			continue
		}
		found = true
		if a.Resource != "mem.aimbus" {
			t.Errorf("run-phase bottleneck = %q (pressure %.2f), want mem.aimbus",
				a.Resource, a.Pressure)
		}
		if a.Share <= 0.5 {
			t.Errorf("AIMbus critical-path share = %.2f, want > 0.5 for an interleaved scan", a.Share)
		}
	}
	if !found {
		t.Fatal("no run phase in attributions")
	}
}

// TestBottleneckLocalPartitioningAvoidsAIMbus pins the contrast: the
// DIMM-local shortlist configuration (RemoteFraction 0) must NOT attribute
// its runtime to the AIMbus — the paper's reason for partitioning the
// database DIMM-locally in the first place.
func TestBottleneckLocalPartitioningAvoidsAIMbus(t *testing.T) {
	spec, err := StageSpec(StageSL, accel.NearMemory, 4, workload.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	spec.Metrics = &metrics.Options{}
	run, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range metrics.Attribute(run.Obs.Sampler, run.PhaseWindows()) {
		if a.Resource == "mem.aimbus" {
			t.Errorf("phase %q attributed to mem.aimbus in the DIMM-local configuration", a.Phase)
		}
	}
}

// TestRunSpecsWithMetricsObserve: every instrumented run is observed, in
// spec order, each carrying a recorder.
func TestRunSpecsWithMetricsObserve(t *testing.T) {
	m := workload.DefaultModel()
	specs := []RunSpec{
		PipelineSpec("a", m, ReACHMapping(), 2, 1),
		PipelineSpec("b", m, ReACHMapping(), 2, 1),
	}
	var seen []string
	res, err := RunSpecs(specs, WithMetrics(metrics.Options{}, func(run string, r *RunResult) {
		if r.Obs == nil {
			t.Errorf("observed run %q without recorder", run)
		}
		seen = append(seen, run)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != "a" || seen[1] != "b" {
		t.Fatalf("observed %v, want [a b]", seen)
	}
	// The caller's specs stay uninstrumented (RunSpecs copies).
	for i := range specs {
		if specs[i].Metrics != nil {
			t.Fatal("WithMetrics mutated the caller's specs")
		}
	}
	for _, r := range res {
		if r.Obs == nil {
			t.Fatal("result without recorder")
		}
	}
}

// TestPhaseWindowsCoverStages: windows come back per stage plus the
// closing "run" window spanning the makespan.
func TestPhaseWindowsCoverStages(t *testing.T) {
	spec := PipelineSpec("p", workload.DefaultModel(), ReACHMapping(), 2, 2)
	spec.Metrics = &metrics.Options{}
	run, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	wins := run.PhaseWindows()
	byName := map[string]metrics.PhaseWindow{}
	for _, w := range wins {
		byName[w.Name] = w
	}
	for _, st := range []string{StageFE, StageSL, StageRR, "run"} {
		w, ok := byName[st]
		if !ok {
			t.Fatalf("missing phase window %q (have %v)", st, wins)
		}
		if w.End <= w.Start {
			t.Fatalf("phase %q window empty: %v..%v", st, w.Start, w.End)
		}
	}
	if got := byName["run"].End - byName["run"].Start; got != run.Makespan {
		t.Fatalf("run window %v != makespan %v", got, run.Makespan)
	}
}

// TestMetricsObserverEffectZero: attaching the observability layer must
// not perturb the simulation — identical makespan, latency and registry
// counters with and without a recorder.
func TestMetricsObserverEffectZero(t *testing.T) {
	m := workload.DefaultModel()
	plain, err := PipelineSpec("plain", m, ReACHMapping(), 2, 3).Run()
	if err != nil {
		t.Fatal(err)
	}
	spec := PipelineSpec("observed", m, ReACHMapping(), 2, 3)
	spec.Metrics = &metrics.Options{Spans: true}
	observed, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if plain.Makespan != observed.Makespan || plain.Latency != observed.Latency {
		t.Fatalf("observer effect: makespan %v vs %v, latency %v vs %v",
			plain.Makespan, observed.Makespan, plain.Latency, observed.Latency)
	}
	digest := func(r *RunResult) map[string][3]uint64 {
		d := map[string][3]uint64{}
		r.Sys.Engine().Stats().Walk(func(name string, res sim.Resource) {
			st := res.ResourceStats()
			d[name] = [3]uint64{st.Ops, st.Bytes, uint64(st.Busy)}
		})
		return d
	}
	dp, do := digest(plain), digest(observed)
	if len(dp) != len(do) {
		t.Fatalf("registry sizes differ: %d vs %d", len(dp), len(do))
	}
	for name, v := range dp {
		if do[name] != v {
			t.Errorf("resource %s diverged: %v vs %v", name, v, do[name])
		}
	}
}
