package cbir

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kernels"
	"repro/internal/workload"
)

func TestNewBinaryEncoderValidation(t *testing.T) {
	if _, err := NewBinaryEncoder(63, 16, 1); err == nil {
		t.Error("non-multiple-of-64 bits accepted")
	}
	if _, err := NewBinaryEncoder(0, 16, 1); err == nil {
		t.Error("zero bits accepted")
	}
	if _, err := NewBinaryEncoder(64, 0, 1); err == nil {
		t.Error("zero dim accepted")
	}
}

func TestBinaryCompressionRatio(t *testing.T) {
	e, err := NewBinaryEncoder(64, 96, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 96 floats = 384 B → 8 B: 48×.
	if e.CodeBytes() != 8 {
		t.Errorf("code bytes = %d", e.CodeBytes())
	}
	if e.CompressionRatio() != 48 {
		t.Errorf("ratio = %v, want 48", e.CompressionRatio())
	}
}

func TestHammingProperties(t *testing.T) {
	f := func(a, b, c uint64) bool {
		x := []uint64{a}
		y := []uint64{b}
		z := []uint64{c}
		// Identity, symmetry, triangle inequality.
		if Hamming(x, x) != 0 {
			return false
		}
		if Hamming(x, y) != Hamming(y, x) {
			return false
		}
		return Hamming(x, z) <= Hamming(x, y)+Hamming(y, z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBinaryCodesPreserveLocality(t *testing.T) {
	// Near vectors must have smaller expected Hamming distance than far
	// ones — the property LSH relies on.
	e, err := NewBinaryEncoder(256, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var nearSum, farSum int
	const trials = 50
	for i := 0; i < trials; i++ {
		v := make([]float32, 32)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		kernels.L2Normalize(v)
		near := make([]float32, 32)
		far := make([]float32, 32)
		for j := range v {
			near[j] = v[j] + float32(rng.NormFloat64()*0.05)
			far[j] = float32(rng.NormFloat64())
		}
		kernels.L2Normalize(near)
		kernels.L2Normalize(far)
		cv := e.Encode(v)
		nearSum += Hamming(cv, e.Encode(near))
		farSum += Hamming(cv, e.Encode(far))
	}
	if nearSum >= farSum/2 {
		t.Errorf("near Hamming sum %d not well below far %d", nearSum, farSum)
	}
}

func TestBinaryIndexRecallBelowExact(t *testing.T) {
	ds := workload.Synthetic(workload.SyntheticParams{
		N: 6000, D: 32, Clusters: 24, Spread: 0.12, Seed: 77,
	})
	queries := ds.Queries(12, 0.03, 99)
	params := SearchParams{Probes: 10, Candidates: 2560, K: 10}

	exact, err := BuildIndex(ds.Vectors, 24, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	exactRecall, _ := exact.RecallAtK(queries, params)

	bin, err := BuildBinaryIndex(ds.Vectors, 24, 20, 5, 64)
	if err != nil {
		t.Fatal(err)
	}
	binRecall, err := bin.RecallAtK(queries, params)
	if err != nil {
		t.Fatal(err)
	}
	if binRecall >= exactRecall {
		t.Errorf("binary recall %.3f not below exact %.3f", binRecall, exactRecall)
	}
	if binRecall <= 0.02 {
		t.Errorf("binary recall %.3f implausibly low; locality broken", binRecall)
	}
}
