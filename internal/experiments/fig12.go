package experiments

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig12Cell is one bar of Fig. 12: the end-to-end pipeline on a single
// compute level with n instances, decomposed by stage.
type Fig12Cell struct {
	Level        accel.Level
	Instances    int
	StageRuntime map[string]sim.Time
	StageEnergy  map[string]float64
	Runtime      sim.Time
	EnergyJ      float64
}

// Fig12Result holds the whole figure, normalised to the on-chip baseline.
type Fig12Result struct {
	Cells    []*Fig12Cell
	Baseline *Fig12Cell // on-chip, 1 instance
}

// Fig12Counts is the figure's instance axis.
func Fig12Counts() []int { return []int{1, 2, 4} }

// fig12Specs is the run matrix: the on-chip baseline first, then each
// near-data level at each instance count (the on-chip bar does not scale
// with n, so it is a single run reused across columns).
func fig12Specs(m workload.Model) (specs []RunSpec, levels []accel.Level, counts []int) {
	add := func(l accel.Level, n int) {
		specs = append(specs, PipelineSpec(fmt.Sprintf("fig12 %v/%d", l, n), m, SingleLevel(l), n, 1))
		levels = append(levels, l)
		counts = append(counts, n)
	}
	add(accel.OnChip, 1)
	for _, n := range Fig12Counts() {
		add(accel.NearMemory, n)
		add(accel.NearStorage, n)
	}
	return specs, levels, counts
}

// fig12Cell reduces one run to its bar.
func fig12Cell(l accel.Level, n int, run *RunResult) *Fig12Cell {
	cell := &Fig12Cell{
		Level:        l,
		Instances:    n,
		StageRuntime: run.StageSpan,
		StageEnergy:  make(map[string]float64),
		Runtime:      run.Latency,
	}
	meter := run.Sys.Meter()
	for _, st := range Stages() {
		cell.StageEnergy[st] = meter.Stage(st)
		cell.EnergyJ += meter.Stage(st)
	}
	return cell
}

// Fig12 runs the end-to-end CBIR pipeline on each single compute level at
// 1, 2 and 4 instances (the paper reserves half the DIMMs for the host, so
// near-memory scales to 4).
func Fig12(m workload.Model, opts ...Option) (*Fig12Result, error) {
	specs, levels, counts := fig12Specs(m)
	runs, err := RunSpecs(specs, opts...)
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{Baseline: fig12Cell(levels[0], counts[0], runs[0])}
	for i := 1; i < len(runs); i++ {
		// Rebuild the figure's column order: each instance count shows
		// the (unscaled) on-chip bar before its near-data bars.
		if levels[i] == accel.NearMemory {
			res.Cells = append(res.Cells, res.Baseline)
		}
		res.Cells = append(res.Cells, fig12Cell(levels[i], counts[i], runs[i]))
	}
	return res, nil
}

// Table renders Fig. 12: normalised runtime and energy per (level,
// instances), stacked by stage.
func (r *Fig12Result) Table() *report.Table {
	t := &report.Table{
		Title: "Fig 12 — end-to-end CBIR on a single compute level (normalised to on-chip)",
		Columns: []string{"ACCs", "Level", "Runtime", "Energy",
			"FE ms", "SL ms", "RR ms"},
	}
	for _, c := range r.Cells {
		t.AddRow(
			fmt.Sprintf("%d", c.Instances),
			c.Level.String(),
			report.F(float64(c.Runtime)/float64(r.Baseline.Runtime), 2),
			report.F(c.EnergyJ/r.Baseline.EnergyJ, 2),
			report.F(c.StageRuntime[StageFE].Milliseconds(), 1),
			report.F(c.StageRuntime[StageSL].Milliseconds(), 1),
			report.F(c.StageRuntime[StageRR].Milliseconds(), 1),
		)
	}
	t.AddNote("on-chip baseline: %.1f ms, %.2f J per batch",
		r.Baseline.Runtime.Milliseconds(), r.Baseline.EnergyJ)
	return t
}
