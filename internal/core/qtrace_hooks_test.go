package core

import (
	"fmt"
	"testing"

	"repro/internal/accel"
	"repro/internal/config"
	"repro/internal/qtrace"
	"repro/internal/storage"
)

// tracedJob builds a two-level chain (near-memory → near-storage → host
// collect) whose stage label is unique to the job, so cross-query interval
// leaks are detectable.
func tracedJob(t *testing.T, s *System, id int) *Job {
	t.Helper()
	j := NewJob(id)
	stage := fmt.Sprintf("stage%d", id)
	a := j.AddTask(accel.Task{
		Name: "a", Stage: stage, Kernel: lookup(t, s, "GEMM-ZCU9"),
		MACs: 2e6, Bytes: 1 << 22, Source: accel.SourceLocalDIMM,
	}, accel.NearMemory)
	a.OutBytes = 4096
	b := j.AddTask(accel.Task{
		Name: "b", Stage: stage, Kernel: lookup(t, s, "KNN-ZCU9"),
		MACs: 1e6, Bytes: 1 << 22, Source: accel.SourceSSD,
		Pattern: storage.Sequential,
	}, accel.NearStorage, a)
	b.OutBytes = 2048
	b.SinkToHost = true
	return j
}

// TestQTraceDisabledZeroAlloc: with no query log attached (the default),
// the per-interval hook is a single nil check — zero allocations, same
// standard as the span hooks (TestStreamPassDisabledZeroAlloc).
func TestQTraceDisabledZeroAlloc(t *testing.T) {
	s := newSystem(t, config.Default())
	g := s.GAM()
	if g.QueryLog() != nil {
		t.Fatal("query log attached by default")
	}
	j := NewJob(0)
	allocs := testing.AllocsPerRun(200, func() {
		g.qtraceAdd(j, qtrace.PhaseExec, "SL", "NearMem", "nearmem0", 0, 1)
	})
	if allocs > 0 {
		t.Fatalf("qtraceAdd with tracing disabled allocates %.1f/op, want 0", allocs)
	}
}

// TestQueryIDsAssignedWithoutLog: QueryIDs are monotonic per GAM in
// submission order whether or not a log is attached, so traces from a log
// attached mid-run still line up.
func TestQueryIDsAssignedWithoutLog(t *testing.T) {
	s := newSystem(t, config.Default())
	for i := 0; i < 3; i++ {
		j := tracedJob(t, s, 10+i)
		if err := s.GAM().Submit(j); err != nil {
			t.Fatal(err)
		}
		if j.QueryID != i {
			t.Fatalf("job %d got QueryID %d, want %d", j.ID, j.QueryID, i)
		}
	}
}

// TestQueryTraceNesting: every recorded interval of a query sits inside
// that query's [arrival, completion] window, and no query's timeline ever
// references another query's stages. The per-job-unique stage labels make
// a cross-query leak observable.
func TestQueryTraceNesting(t *testing.T) {
	s := newSystem(t, config.Default())
	log := qtrace.NewLog(qtrace.Options{})
	s.GAM().SetQueryLog(log)

	jobs := make([]*Job, 3)
	for i := range jobs {
		jobs[i] = tracedJob(t, s, 100+i)
		if err := s.GAM().Submit(jobs[i]); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()

	if log.CompletedCount() != 3 || log.Sketch().Count() != 3 {
		t.Fatalf("completions = %d, sketch = %d, want 3/3",
			log.CompletedCount(), log.Sketch().Count())
	}
	for i, j := range jobs {
		q := log.Query(j.QueryID)
		if q == nil || !q.Completed() {
			t.Fatalf("query %d missing or incomplete", j.QueryID)
		}
		if q.Job != j.ID {
			t.Fatalf("query %d maps to job %d, want %d", q.ID, q.Job, j.ID)
		}
		if q.Arrival != j.SubmittedAt || q.Done != j.FinishedAt {
			t.Fatalf("query %d window [%v,%v] != job window [%v,%v]",
				q.ID, q.Arrival, q.Done, j.SubmittedAt, j.FinishedAt)
		}
		wantStage := fmt.Sprintf("stage%d", 100+i)
		phases := map[string]bool{}
		for _, iv := range q.Intervals {
			if iv.End < iv.Start {
				t.Errorf("query %d: interval %+v ends before it starts", q.ID, iv)
			}
			if iv.Start < q.Arrival || iv.End > q.Done {
				t.Errorf("query %d: interval %+v outside [%v,%v]",
					q.ID, iv, q.Arrival, q.Done)
			}
			if iv.Stage != wantStage {
				t.Errorf("query %d: interval references stage %q, want %q",
					q.ID, iv.Stage, wantStage)
			}
			phases[iv.Phase] = true
		}
		// Two dispatches, two executions, a DMA to the dependent plus the
		// host collect, and status polling at both non-coherent levels.
		for _, p := range []string{qtrace.PhaseQueue, qtrace.PhaseExec, qtrace.PhaseXfer, qtrace.PhasePollGap} {
			if !phases[p] {
				t.Errorf("query %d: no %s interval recorded", q.ID, p)
			}
		}
		if dom := q.Dominant(); dom.Share <= 0 || dom.Share > 1 {
			t.Errorf("query %d: dominant share %v out of (0,1]", q.ID, dom.Share)
		}
	}
}

// TestQTraceObserverEffectZero: attaching a query log must not change the
// simulation — identical job timings and control-plane stats with and
// without tracing.
func TestQTraceObserverEffectZero(t *testing.T) {
	run := func(traced bool) ([]*Job, GAMStats) {
		s := newSystem(t, config.Default())
		if traced {
			s.GAM().SetQueryLog(qtrace.NewLog(qtrace.Options{}))
		}
		jobs := make([]*Job, 3)
		for i := range jobs {
			jobs[i] = tracedJob(t, s, i)
			if err := s.GAM().Submit(jobs[i]); err != nil {
				t.Fatal(err)
			}
		}
		s.Run()
		return jobs, s.GAM().Stats()
	}
	plain, plainStats := run(false)
	traced, tracedStats := run(true)
	for i := range plain {
		if plain[i].FinishedAt != traced[i].FinishedAt {
			t.Errorf("job %d finish: plain %v, traced %v",
				i, plain[i].FinishedAt, traced[i].FinishedAt)
		}
	}
	if plainStats != tracedStats {
		t.Errorf("stats diverge: plain %+v, traced %+v", plainStats, tracedStats)
	}
}
