package mem

import (
	"repro/internal/sim"
)

// Port is the bulk-access view of a memory resource: a capacity-limited,
// contended pipe with separate effective efficiencies for streaming and
// random access. Accelerator data paths use Ports to account
// multi-megabyte transfers without per-line events; the efficiencies are
// validated against the request-level Controller model by tests in this
// package.
type Port struct {
	link      *sim.Link
	streamEff float64
	randomEff float64
}

// NewPort creates a port with the given peak bandwidth (bytes/second),
// per-transfer latency, and effective efficiencies for streaming vs.
// random access patterns.
func NewPort(eng *sim.Engine, name string, peakBytesPerSec float64, latency sim.Time, streamEff, randomEff float64) *Port {
	if streamEff <= 0 || streamEff > 1 || randomEff <= 0 || randomEff > 1 {
		panic("mem: port efficiencies must be in (0,1]")
	}
	return &Port{
		link:      sim.NewLink(eng, name, peakBytesPerSec, latency),
		streamEff: streamEff,
		randomEff: randomEff,
	}
}

// Stream accounts a sequential bulk transfer of n bytes and returns its
// completion time (contention with other users of the port included).
func (p *Port) Stream(n int64) sim.Time {
	return p.link.TransferEff(n, p.streamEff)
}

// Random accounts a random-access bulk transfer of n bytes.
func (p *Port) Random(n int64) sim.Time {
	return p.link.TransferEff(n, p.randomEff)
}

// EffectiveStreamBandwidth reports peak × stream efficiency, in bytes/s.
func (p *Port) EffectiveStreamBandwidth() float64 {
	return p.link.BytesPerSec() * p.streamEff
}

// EffectiveRandomBandwidth reports peak × random efficiency, in bytes/s.
func (p *Port) EffectiveRandomBandwidth() float64 {
	return p.link.BytesPerSec() * p.randomEff
}

// TotalBytes reports payload bytes moved through the port.
func (p *Port) TotalBytes() uint64 { return p.link.TotalBytes() }

// BusyTime reports occupied capacity time.
func (p *Port) BusyTime() sim.Time { return p.link.BusyTime() }

// QueuedDelay reports accumulated contention delay.
func (p *Port) QueuedDelay() sim.Time { return p.link.QueuedDelay() }

// NextFree reports when the port next has free capacity.
func (p *Port) NextFree() sim.Time { return p.link.NextFree() }

// Link exposes the underlying link for shared-resource wiring (several
// ports can be layered over one physical link via NewPortOn).
func (p *Port) Link() *sim.Link { return p.link }

// NewPortOn layers a port with its own efficiencies over an existing link,
// sharing the link's capacity with all other users — used to model several
// agents contending for one physical channel.
func NewPortOn(link *sim.Link, streamEff, randomEff float64) *Port {
	if streamEff <= 0 || streamEff > 1 || randomEff <= 0 || randomEff > 1 {
		panic("mem: port efficiencies must be in (0,1]")
	}
	return &Port{link: link, streamEff: streamEff, randomEff: randomEff}
}
