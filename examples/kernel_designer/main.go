// kernel_designer walks the accelerator-template authoring flow of the
// paper's §III-A: describe a kernel as a loop nest, estimate its synthesis
// outcome (II, depth, resources, frequency — the Table III columns) with
// the HLS estimator, explore the unroll/partition design space, and deploy
// the best variant on a near-memory instance of the simulated hierarchy.
//
//	go run ./examples/kernel_designer
package main

import (
	"fmt"
	"log"

	"repro/internal/fpga"
	"repro/internal/hls"
)

func main() {
	fmt.Println("design space: tiled fp32 GeMM on Zynq UltraScale+ (near-memory AIM module)")
	fmt.Printf("%8s %4s %6s %9s %9s %9s %10s %6s\n",
		"unroll", "II", "depth", "freq MHz", "DSP %", "BRAM %", "GMAC/s", "fits")

	type variant struct {
		unroll int
		est    *hls.Estimate
		gmacs  float64
	}
	var best *variant
	for _, unroll := range []int{4, 8, 16, 32, 64, 128} {
		k := hls.Kernel{
			Name:  "gemm-tile",
			Class: fpga.GeMM,
			Loops: []hls.Loop{
				{Name: "m", Trip: 1024},
				{Name: "n", Trip: 1024, Unroll: unroll},
				{Name: "k", Trip: 96},
			},
			Ops: hls.OpCounts{MACs: 1, MemReads: 2, MemWrites: 1},
			Buffers: []hls.Buffer{
				{Name: "a", Bytes: 96 * 1024 * 4, Partitions: unroll, AccessesPerIter: 1},
				{Name: "b", Bytes: 96 * 1024 * 4, Partitions: unroll, AccessesPerIter: 1},
				{Name: "c", Bytes: 1024 * 4, Partitions: unroll, AccessesPerIter: 1},
			},
			StreamBytesPerIter: 4, // one fp32 operand streamed per MAC lane
			TargetMHz:          300,
		}
		est, err := hls.Analyze(k, fpga.ZynqZCU9)
		if err != nil {
			log.Fatal(err)
		}
		gmacs := float64(unroll) / float64(est.II) * est.FreqMHz * 1e6 / 1e9
		fmt.Printf("%8d %4d %6d %9.0f %9.0f %9.0f %10.1f %6v\n",
			unroll, est.II, est.Depth, est.FreqMHz,
			est.Util.DSP, est.Util.BRAM, gmacs, est.Fits)
		if est.Fits && (best == nil || gmacs > best.gmacs) {
			best = &variant{unroll: unroll, est: est, gmacs: gmacs}
		}
	}
	if best == nil {
		log.Fatal("no variant fits the device")
	}

	fmt.Printf("\nselected: unroll %d (%.1f GMAC/s) — generating accelerator template\n",
		best.unroll, best.gmacs)
	tpl, err := best.est.Template("GEMM-DESIGNED-ZCU9", 5.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("template %q: %v MHz, II=%d, depth=%d, util ff=%.0f%% lut=%.0f%% dsp=%.0f%% bram=%.0f%%\n",
		tpl.Name, tpl.FreqMHz, tpl.II, tpl.Depth,
		tpl.Util.FF, tpl.Util.LUT, tpl.Util.DSP, tpl.Util.BRAM)

	// A designed template slots straight into the registry used by the
	// ReACH runtime (RegisterAcc resolves it like any Table III kernel).
	reg := fpga.NewRegistry()
	if err := reg.Register(tpl); err != nil {
		log.Fatal(err)
	}
	shortlist := tpl.Duration(16*96*1000, 2_200_000_000/4)
	fmt.Printf("estimated shortlist-retrieval shard time on this kernel: %v\n", shortlist)
}
