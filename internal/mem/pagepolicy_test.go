package mem

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// runTrace streams a fixed access trace through a single-DIMM controller
// and returns the finish time.
func runTrace(t *testing.T, policy PagePolicy, addrs []int64) sim.Time {
	t.Helper()
	eng := sim.NewEngine()
	d := NewDIMM(eng, "d", noRefresh(), DefaultGeometry())
	d.SetPagePolicy(policy)
	c := NewController(eng, "mc", []*DIMM{d}, 64, 64)
	next := 0
	var finish sim.Time
	var submit func()
	submit = func() {
		for next < len(addrs) {
			ok := c.Submit(&Request{Addr: addrs[next], Done: func(at sim.Time) {
				if at > finish {
					finish = at
				}
				submit()
			}})
			if !ok {
				return
			}
			next++
		}
	}
	submit()
	eng.Run()
	return finish
}

func TestPagePolicyString(t *testing.T) {
	if OpenPage.String() != "open-page" || ClosedPage.String() != "closed-page" {
		t.Error("policy strings wrong")
	}
}

func TestSequentialStreamsBusBoundUnderBothPolicies(t *testing.T) {
	// With activation lookahead, a sequential stream saturates the data
	// bus under either policy (activations hide under earlier bursts), so
	// the policies must be within a whisker of each other and of the
	// bus-bound lower bound.
	addrs := make([]int64, 4096)
	for i := range addrs {
		addrs[i] = int64(i) * 64
	}
	open := runTrace(t, OpenPage, addrs)
	closed := runTrace(t, ClosedPage, addrs)
	busBound := sim.FromSeconds(4096 * 64 / DDR42400().PeakBandwidth())
	for name, got := range map[string]sim.Time{"open": open, "closed": closed} {
		if got < busBound {
			t.Errorf("%s page beat the bus bound: %v < %v", name, got, busBound)
		}
		if float64(got) > float64(busBound)*1.05 {
			t.Errorf("%s page = %v, want within 5%% of bus bound %v", name, got, busBound)
		}
	}
}

func TestClosedPageWinsOnRandomTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	addrs := make([]int64, 4096)
	for i := range addrs {
		// Random rows within one bank-heavy region: open page suffers
		// conflicts (tRAS + tRP before reactivation), closed page pays
		// only tRCD.
		addrs[i] = int64(rng.Intn(1<<20)) &^ 63
	}
	open := runTrace(t, OpenPage, addrs)
	closed := runTrace(t, ClosedPage, addrs)
	if closed >= open {
		t.Errorf("closed page (%v) not faster than open page (%v) on random traffic", closed, open)
	}
}

func TestClosedPageLeavesRowsClosed(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDIMM(eng, "d", noRefresh(), DefaultGeometry())
	d.SetPagePolicy(ClosedPage)
	d.Access(0, false)
	for i := range d.banks {
		if d.banks[i].openRow != -1 {
			t.Fatalf("bank %d row open under closed-page policy", i)
		}
	}
	if d.PagePolicy() != ClosedPage {
		t.Error("policy getter wrong")
	}
}
